"""Per-pattern dynamic IR-drop analysis (paper Section 2.4, Figure 3).

Takes a timing-simulation result for one pattern (the VCD substitute),
charges each toggled net's energy to its driver's tap node, averages the
current over the chosen window (the full cycle for the CAP view, the
pattern's STW for the SCAP view), and solves both rails.

Besides the worst-average numbers and map grids, the result carries the
per-gate and per-flop total droop (VDD sag + VSS bounce at the cell's
tap) that the IR-drop-aware re-simulation of Section 3.2 feeds into the
``Delay * (1 + k_volt * dV)`` scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..config import IR_DROP_RED_FRACTION, VDD_NOMINAL
from ..errors import PowerGridError
from ..power.energy import clock_buffer_energies_fj
from ..sim.event import TimingResult
from .grid import GridModel


@dataclass
class DynamicIrResult:
    """Dynamic IR-drop of one pattern over one analysis window."""

    window_ns: float
    drop_vdd: np.ndarray  # per grid node, volts
    drop_vss: np.ndarray
    gate_droop_v: np.ndarray  # VDD drop + VSS bounce at each gate tap
    flop_droop_v: np.ndarray
    vdd: float = VDD_NOMINAL

    @property
    def worst_vdd_v(self) -> float:
        return float(self.drop_vdd.max()) if self.drop_vdd.size else 0.0

    @property
    def worst_vss_v(self) -> float:
        return float(self.drop_vss.max()) if self.drop_vss.size else 0.0

    def red_fraction(self, threshold_fraction: float = IR_DROP_RED_FRACTION) -> float:
        """Fraction of grid nodes dropping more than 10 % of VDD."""
        limit = threshold_fraction * self.vdd
        total = self.drop_vdd + self.drop_vss
        return float((total > limit).mean())

    def worst_in_block(self, model: GridModel, block: str) -> Dict[str, float]:
        return {
            "vdd": model.worst_in_block(self.drop_vdd, block),
            "vss": model.worst_in_block(self.drop_vss, block),
        }


def dynamic_ir_for_pattern(
    model: GridModel,
    timing: TimingResult,
    window_ns: Optional[float] = None,
    domain: Optional[str] = None,
    vdd: float = VDD_NOMINAL,
    include_clock: bool = True,
    clock_gating: bool = False,
) -> DynamicIrResult:
    """Solve the rails for one simulated pattern.

    Parameters
    ----------
    model:
        The design's grid model.
    timing:
        Event/fast timing result for the pattern's launch-to-capture
        cycle.
    window_ns:
        Averaging window; defaults to the pattern's STW (the SCAP view).
        Pass the full period for the CAP view.
    domain:
        Pulsed clock domain (for clock-tree injection); defaults to the
        design's dominant domain.
    include_clock:
        Charge the launch-edge clock-tree toggles within the window.
    clock_gating:
        Model ideal clock gating: only tree branches clocking a flop
        that actually launched this pattern draw current.  Launching
        flops are recognised by their toggled Q nets in *timing*.
    """
    design = model.design
    if window_ns is None:
        window_ns = timing.stw_ns
    if window_ns <= 0.0:
        # Fully quiet pattern: zero current, zero drop.
        n = model.vdd_grid.n_nodes
        return DynamicIrResult(
            window_ns=0.0,
            drop_vdd=np.zeros(n),
            drop_vss=np.zeros(n),
            gate_droop_v=np.zeros(design.netlist.n_gates),
            flop_droop_v=np.zeros(design.netlist.n_flops),
            vdd=vdd,
        )

    caps = design.parasitics.net_cap_ff
    net_energy_fj = timing.toggles * caps * vdd * vdd
    node_power_mw = np.zeros(model.vdd_grid.n_nodes)
    toggled = np.nonzero(timing.toggles)[0]
    for net in toggled:
        node = model.net_node[net]
        if node >= 0:
            node_power_mw[node] += net_energy_fj[net] / window_ns * 1e-3

    if include_clock:
        # The clock burst is the same every cycle; averaging it over the
        # pattern-specific STW would make near-quiet patterns look
        # droopier than active ones.  Use the half-period convention of
        # the statistical analysis instead, so the clock contributes a
        # pattern-independent baseline.
        dom = domain if domain is not None else design.dominant_domain()
        tree = design.clock_trees[dom]
        clock_window_ns = design.domains[dom].period_ns / 2.0
        if clock_gating:
            from ..power.energy import gated_clock_buffer_energies_fj

            launching = {
                fi
                for fi in tree.leaf_of_flop
                if timing.toggles[design.netlist.flops[fi].q] > 0
            }
            energies = gated_clock_buffer_energies_fj(
                tree, launching, vdd, edges=1
            )
        else:
            energies = clock_buffer_energies_fj(tree, vdd, edges=1)
        nodes = model.clock_nodes[dom]
        for bi, energy in energies.items():
            node_power_mw[nodes[bi]] += energy / clock_window_ns * 1e-3

    injection = model.injection_from_node_power(node_power_mw, vdd)
    drop_vdd, drop_vss = model.solve_both(injection)
    total = drop_vdd + drop_vss
    return DynamicIrResult(
        window_ns=window_ns,
        drop_vdd=drop_vdd,
        drop_vss=drop_vss,
        gate_droop_v=total[model.gate_node],
        flop_droop_v=total[model.flop_node],
        vdd=vdd,
    )
