"""IR-drop map rendering (the Figure 3 substitute).

Renders a grid-node drop vector as an ASCII heat map where ``#`` marks
the paper's "red" region (> 10 % of VDD) and digits bucket the rest, and
provides CSV export for plotting.
"""

from __future__ import annotations

import io
from typing import Optional

import numpy as np

from ..config import IR_DROP_RED_FRACTION, VDD_NOMINAL
from .grid import PowerGrid

#: Drop buckets as fractions of the red threshold.
_LEVELS = " .:-=+*%@"


def red_fraction(
    drop: np.ndarray,
    vdd: float = VDD_NOMINAL,
    threshold_fraction: float = IR_DROP_RED_FRACTION,
) -> float:
    """Fraction of nodes above the red threshold (10 % of VDD)."""
    return float((drop > threshold_fraction * vdd).mean())


def render_ir_map(
    grid: PowerGrid,
    drop: np.ndarray,
    vdd: float = VDD_NOMINAL,
    threshold_fraction: float = IR_DROP_RED_FRACTION,
    title: Optional[str] = None,
) -> str:
    """ASCII heat map of one rail's drop, red region marked ``#``."""
    field = grid.drop_grid(drop)
    limit = threshold_fraction * vdd
    lines = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * grid.nx + "+")
    # Render top row (max y) first, like a floorplan.
    for iy in reversed(range(grid.ny)):
        row = []
        for ix in range(grid.nx):
            v = field[iy, ix]
            if v > limit:
                row.append("#")
            else:
                bucket = int(v / limit * (len(_LEVELS) - 1))
                row.append(_LEVELS[min(bucket, len(_LEVELS) - 1)])
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * grid.nx + "+")
    lines.append(
        f"worst {drop.max()*1000:.0f} mV, red(> {limit*1000:.0f} mV) "
        f"{red_fraction(drop, vdd, threshold_fraction)*100:.1f} % of die"
    )
    return "\n".join(lines)


def ir_map_csv(grid: PowerGrid, drop: np.ndarray) -> str:
    """CSV dump (x_um, y_um, drop_v) of a drop vector."""
    buf = io.StringIO()
    buf.write("x_um,y_um,drop_v\n")
    for node in range(grid.n_nodes):
        x, y = grid.node_position(node)
        buf.write(f"{x:.1f},{y:.1f},{drop[node]:.6f}\n")
    return buf.getvalue()
