"""Vectorless statistical IR-drop analysis (paper Section 2.2, Table 3).

Injects each block's statistical average current (30 % net toggle rate
over the analysis window) at the blocks' cell taps, solves both rails,
and reports per-block average switching power plus worst average drop.

Run twice — full-cycle window (Case 1) and half-cycle window (Case 2) —
it reproduces the paper's observation: halving the window doubles every
block's average power, but only the big central block (B5) sees its
worst IR-drop rise sharply, because the peripheral blocks sit next to
the pad ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..config import STATISTICAL_TOGGLE_RATE, VDD_NOMINAL
from ..power.energy import clock_buffer_energies_fj
from ..power.statistical import BlockPowerStats, statistical_block_power
from .grid import GridModel


@dataclass(frozen=True)
class StatisticalIrRow:
    """One Table-3 row: a block's power and worst average IR-drop."""

    block: str
    window_ns: float
    avg_power_mw: float
    worst_drop_vdd_v: float
    worst_drop_vss_v: float


def statistical_ir_analysis(
    model: GridModel,
    domain: Optional[str] = None,
    toggle_rate: float = STATISTICAL_TOGGLE_RATE,
    window_fraction: float = 1.0,
    vdd: float = VDD_NOMINAL,
    include_clock: bool = True,
    include_chip_row: bool = False,
) -> List[StatisticalIrRow]:
    """Per-block statistical IR-drop rows (plus optional Chip total)."""
    design = model.design
    stats = statistical_block_power(
        design,
        domain=domain,
        toggle_rate=toggle_rate,
        window_fraction=window_fraction,
        vdd=vdd,
        include_clock=include_clock,
    )
    window_ns = next(iter(stats.values())).window_ns

    # Per-node power: each driver's statistical switched energy over the
    # window lands on its tap node.
    netlist = design.netlist
    caps = design.parasitics.net_cap_ff
    node_power_mw = np.zeros(model.vdd_grid.n_nodes)
    unit = vdd * vdd * toggle_rate / window_ns * 1e-3  # fJ/ns -> mW
    for gi, g in enumerate(netlist.gates):
        node_power_mw[model.gate_node[gi]] += caps[g.output] * unit
    for fi, f in enumerate(netlist.flops):
        node_power_mw[model.flop_node[fi]] += caps[f.q] * unit
    if include_clock:
        for name, tree in design.clock_trees.items():
            energies = clock_buffer_energies_fj(tree, vdd, edges=2)
            period_ns = design.domains[name].period_ns
            nodes = model.clock_nodes[name]
            for bi, energy in energies.items():
                node_power_mw[nodes[bi]] += energy / period_ns * 1e-3

    injection = model.injection_from_node_power(node_power_mw, vdd)
    drop_vdd, drop_vss = model.solve_both(injection)

    rows = [
        StatisticalIrRow(
            block=block,
            window_ns=window_ns,
            avg_power_mw=stats[block].avg_power_mw,
            worst_drop_vdd_v=model.worst_in_block(drop_vdd, block),
            worst_drop_vss_v=model.worst_in_block(drop_vss, block),
        )
        for block in design.blocks()
    ]
    if include_chip_row:
        rows.append(
            StatisticalIrRow(
                block="Chip",
                window_ns=window_ns,
                avg_power_mw=sum(s.avg_power_mw for s in stats.values()),
                worst_drop_vdd_v=float(drop_vdd.max()),
                worst_drop_vss_v=float(drop_vss.max()),
            )
        )
    return rows


def block_power_thresholds_mw(
    rows: List[StatisticalIrRow],
) -> Dict[str, float]:
    """Per-block SCAP thresholds from a (Case-2) statistical run.

    The paper uses each block's half-cycle statistical average power as
    the SCAP limit a supply-noise-tolerant pattern must respect.
    """
    return {
        row.block: row.avg_power_mw for row in rows if row.block != "Chip"
    }
