"""Power-delivery-network modelling and IR-drop analysis
(the SOC-Encounter rail-analysis substitute).

* :mod:`~repro.pgrid.grid` — resistive VDD/VSS grids with periphery
  pads, cell taps and a cached sparse factorisation,
* :mod:`~repro.pgrid.statistical_ir` — vectorless IR-drop (Table 3),
* :mod:`~repro.pgrid.dynamic_ir` — per-pattern dynamic IR-drop
  (Table 4, Figure 3) including per-instance droop for delay scaling,
* :mod:`~repro.pgrid.maps` — IR-drop map rendering.
"""

from .grid import GridModel, PowerGrid
from .statistical_ir import StatisticalIrRow, statistical_ir_analysis
from .dynamic_ir import DynamicIrResult, dynamic_ir_for_pattern
from .maps import render_ir_map, red_fraction

__all__ = [
    "DynamicIrResult",
    "GridModel",
    "PowerGrid",
    "StatisticalIrRow",
    "dynamic_ir_for_pattern",
    "red_fraction",
    "render_ir_map",
    "statistical_ir_analysis",
]
