"""Resistive power-grid model with periphery pads.

Each supply rail (VDD and VSS) is a uniform ``nx x ny`` resistive mesh
over the die.  Pads — 37 per rail, evenly spaced around the periphery as
in the case study — tie their nearest mesh node to the ideal rail
through a pad resistance.  Average IR-drop over an analysis window is
then a single sparse nodal solve:

``G * u = i``

where ``u`` is the drop (VDD sag or VSS bounce) at each node and ``i``
the average cell current injected at that node during the window.  The
sparse LU factorisation is computed once per grid and reused across
patterns, which is what makes per-pattern dynamic analysis cheap.

Because the reproduction runs a scaled-down SOC (milliamps, not amps),
grid resistance is *calibrated*, not taken from metal sheet resistance:
:meth:`GridModel.calibrated` scales the mesh so that the vectorless
functional analysis lands at a realistic few-percent-of-VDD worst drop,
preserving the paper's drop *fractions* at any design scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import csc_matrix, lil_matrix
from scipy.sparse.linalg import splu

from ..config import SUPPLY_PAD_COUNT, VDD_NOMINAL
from ..errors import PowerGridError
from ..soc.design import SocDesign
from ..soc.floorplan import Floorplan, periphery_pad_positions


class PowerGrid:
    """One rail's resistive mesh with pads and a cached factorisation."""

    def __init__(
        self,
        floorplan: Floorplan,
        nx: int = 24,
        ny: int = 24,
        seg_res_ohm: float = 25.0,
        pad_res_ohm: float = 2.0,
        n_pads: int = SUPPLY_PAD_COUNT,
    ):
        if nx < 2 or ny < 2:
            raise PowerGridError("grid needs at least 2x2 nodes")
        if seg_res_ohm <= 0 or pad_res_ohm <= 0:
            raise PowerGridError("resistances must be positive")
        self.floorplan = floorplan
        self.nx = nx
        self.ny = ny
        self.seg_res_ohm = seg_res_ohm
        self.pad_res_ohm = pad_res_ohm
        self.n_nodes = nx * ny

        g_seg = 1.0 / seg_res_ohm
        g_pad = 1.0 / pad_res_ohm
        G = lil_matrix((self.n_nodes, self.n_nodes))
        for iy in range(ny):
            for ix in range(nx):
                a = self.node_index(ix, iy)
                for jx, jy in ((ix + 1, iy), (ix, iy + 1)):
                    if jx < nx and jy < ny:
                        b = self.node_index(jx, jy)
                        G[a, a] += g_seg
                        G[b, b] += g_seg
                        G[a, b] -= g_seg
                        G[b, a] -= g_seg

        self.pad_nodes: List[int] = []
        for px, py in periphery_pad_positions(floorplan, n_pads):
            node = self.nearest_node(px, py)
            self.pad_nodes.append(node)
            G[node, node] += g_pad

        self._lu = splu(csc_matrix(G))

    # ------------------------------------------------------------------
    def node_index(self, ix: int, iy: int) -> int:
        return iy * self.nx + ix

    def node_position(self, node: int) -> Tuple[float, float]:
        iy, ix = divmod(node, self.nx)
        return (
            (ix + 0.5) / self.nx * self.floorplan.width,
            (iy + 0.5) / self.ny * self.floorplan.height,
        )

    def nearest_node(self, x: float, y: float) -> int:
        ix = min(self.nx - 1, max(0, int(x / self.floorplan.width * self.nx)))
        iy = min(self.ny - 1, max(0, int(y / self.floorplan.height * self.ny)))
        return self.node_index(ix, iy)

    def drop_v(self, injection_a: np.ndarray) -> np.ndarray:
        """Solve for per-node drop (V) given per-node currents (A)."""
        if injection_a.shape != (self.n_nodes,):
            raise PowerGridError(
                f"injection must have {self.n_nodes} entries, got "
                f"{injection_a.shape}"
            )
        return self._lu.solve(injection_a)

    def drop_grid(self, drop: np.ndarray) -> np.ndarray:
        """Reshape a node vector into an (ny, nx) map."""
        return drop.reshape(self.ny, self.nx)


@dataclass
class GridModel:
    """Paired VDD/VSS grids bound to one design, with cell taps."""

    design: SocDesign
    vdd_grid: PowerGrid
    vss_grid: PowerGrid
    gate_node: np.ndarray
    flop_node: np.ndarray
    net_node: np.ndarray
    clock_nodes: Dict[str, np.ndarray]
    block_nodes: Dict[str, np.ndarray]

    @classmethod
    def build(
        cls,
        design: SocDesign,
        nx: int = 24,
        ny: int = 24,
        seg_res_ohm: float = 25.0,
        pad_res_ohm: float = 2.0,
        vss_res_scale: float = 1.08,
    ) -> "GridModel":
        """Construct both rails and map every instance to a tap node.

        The VSS mesh is slightly more resistive than VDD's
        (``vss_res_scale``), reflecting the usual asymmetry between the
        power and ground straps — it is why the paper's VSS numbers sit
        a few percent above the VDD ones.
        """
        fp = design.floorplan
        vdd = PowerGrid(fp, nx, ny, seg_res_ohm, pad_res_ohm)
        vss = PowerGrid(
            fp, nx, ny, seg_res_ohm * vss_res_scale,
            pad_res_ohm * vss_res_scale,
        )
        netlist = design.netlist
        center = fp.center

        gate_node = np.zeros(netlist.n_gates, dtype=np.int32)
        for gi, g in enumerate(netlist.gates):
            pos = g.pos if g.pos is not None else center
            gate_node[gi] = vdd.nearest_node(*pos)
        flop_node = np.zeros(netlist.n_flops, dtype=np.int32)
        for fi, f in enumerate(netlist.flops):
            pos = f.pos if f.pos is not None else center
            flop_node[fi] = vdd.nearest_node(*pos)

        # Net tap = driver instance tap (energy is charged to drivers).
        net_node = np.full(netlist.n_nets, -1, dtype=np.int32)
        for gi, g in enumerate(netlist.gates):
            net_node[g.output] = gate_node[gi]
        for fi, f in enumerate(netlist.flops):
            net_node[f.q] = flop_node[fi]

        clock_nodes = {
            name: np.array(
                [vdd.nearest_node(*buf.pos) for buf in tree.buffers],
                dtype=np.int32,
            )
            for name, tree in design.clock_trees.items()
        }

        block_nodes: Dict[str, np.ndarray] = {}
        for block in design.blocks():
            region = fp.region(block)
            nodes = [
                node
                for node in range(vdd.n_nodes)
                if region.contains(*vdd.node_position(node))
            ]
            block_nodes[block] = np.array(nodes, dtype=np.int32)

        return cls(
            design=design,
            vdd_grid=vdd,
            vss_grid=vss,
            gate_node=gate_node,
            flop_node=flop_node,
            net_node=net_node,
            clock_nodes=clock_nodes,
            block_nodes=block_nodes,
        )

    @classmethod
    def calibrated(
        cls,
        design: SocDesign,
        target_worst_drop_v: float = 0.15,
        nx: int = 24,
        ny: int = 24,
        **kwargs,
    ) -> "GridModel":
        """Build a grid whose resistance is scaled so the vectorless
        Case-2 (half-cycle) analysis hits *target_worst_drop_v* on VDD.

        This keeps IR-drop fractions paper-realistic regardless of the
        generated design's scale (see module docstring).
        """
        from .statistical_ir import statistical_ir_analysis

        model = cls.build(design, nx=nx, ny=ny, **kwargs)
        rows = statistical_ir_analysis(model, window_fraction=0.5)
        worst = max(r.worst_drop_vdd_v for r in rows)
        if worst <= 0:
            raise PowerGridError("calibration saw zero drop; empty design?")
        scale = target_worst_drop_v / worst
        return cls.build(
            design,
            nx=nx,
            ny=ny,
            seg_res_ohm=model.vdd_grid.seg_res_ohm * scale,
            pad_res_ohm=model.vdd_grid.pad_res_ohm * scale,
            **{k: v for k, v in kwargs.items()
               if k not in ("seg_res_ohm", "pad_res_ohm")},
        )

    # ------------------------------------------------------------------
    def injection_from_node_power(
        self, node_power_mw: np.ndarray, vdd: float = VDD_NOMINAL
    ) -> np.ndarray:
        """Convert per-node average power (mW) to rail current (A)."""
        return node_power_mw * 1e-3 / vdd

    def solve_both(
        self, injection_a: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(VDD drop, VSS bounce) per node for one current pattern."""
        return (
            self.vdd_grid.drop_v(injection_a),
            self.vss_grid.drop_v(injection_a),
        )

    def worst_in_block(self, drop: np.ndarray, block: str) -> float:
        """Worst (max) average drop among a block's grid nodes."""
        nodes = self.block_nodes.get(block)
        if nodes is None or len(nodes) == 0:
            return 0.0
        return float(drop[nodes].max())
