"""``python -m repro`` — thin shim over :mod:`repro.cli`.

The console script (``[project.scripts] repro``) and the module entry
point share the one :func:`repro.cli.main`, so flags, exit codes and
logging behave identically whichever way the CLI is invoked.
"""

from __future__ import annotations

import sys

from .cli import main

__all__ = ["main"]

if __name__ == "__main__":
    sys.exit(main())
