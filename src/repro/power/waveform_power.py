"""Time-resolved power: current waveforms and peak-power metrics.

CAP and SCAP are single-number averages; the underlying physics is a
current *waveform* — the paper's point is precisely that the same
energy squeezed into a shorter window is a larger (and more damaging)
current.  This module bins a traced event simulation into time slices
and reports instantaneous power/current, the peak slice, and per-block
waveforms — useful for visualising why a high-SCAP pattern stresses the
grid and for choosing dynamic-IR analysis windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..config import VDD_NOMINAL
from ..errors import SimulationError
from ..netlist.netlist import Netlist
from ..netlist.parasitics import ParasiticModel
from ..sim.event import TimingResult


@dataclass
class PowerWaveform:
    """Binned instantaneous power over one launch-to-capture cycle."""

    bin_edges_ns: np.ndarray  # length n_bins + 1
    power_mw: np.ndarray  # length n_bins
    power_mw_by_block: Dict[str, np.ndarray]
    vdd: float = VDD_NOMINAL

    @property
    def n_bins(self) -> int:
        """Number of time bins."""
        return int(self.power_mw.shape[0])

    @property
    def bin_width_ns(self) -> float:
        """Width of each time bin."""
        return float(self.bin_edges_ns[1] - self.bin_edges_ns[0])

    @property
    def peak_power_mw(self) -> float:
        """Tallest bin: the instantaneous power peak."""
        return float(self.power_mw.max()) if self.n_bins else 0.0

    @property
    def peak_time_ns(self) -> float:
        """Centre time of the peak bin."""
        if self.n_bins == 0:
            return 0.0
        i = int(self.power_mw.argmax())
        return float(self.bin_edges_ns[i] + self.bin_width_ns / 2.0)

    @property
    def average_power_mw(self) -> float:
        """Mean binned power over the window."""
        return float(self.power_mw.mean()) if self.n_bins else 0.0

    def peak_current_ma(self) -> float:
        """Peak current drawn from the rail (peak power / VDD)."""
        return self.peak_power_mw / self.vdd

    def to_csv(self) -> str:
        """CSV dump (t_ns, power_mw) for plotting."""
        lines = ["t_ns,power_mw"]
        for i in range(self.n_bins):
            mid = self.bin_edges_ns[i] + self.bin_width_ns / 2.0
            lines.append(f"{mid:.3f},{self.power_mw[i]:.6f}")
        return "\n".join(lines) + "\n"


def power_waveform(
    netlist: Netlist,
    parasitics: ParasiticModel,
    result: TimingResult,
    n_bins: int = 40,
    window_ns: Optional[float] = None,
    vdd: float = VDD_NOMINAL,
) -> PowerWaveform:
    """Bin a traced timing result into an instantaneous power waveform.

    Requires the simulation to have been run with ``record_trace=True``.
    Each event deposits its net's ``C * VDD^2`` into the bin containing
    its timestamp; the bin's power is energy over bin width.
    """
    if result.trace is None:
        raise SimulationError(
            "power_waveform needs a traced simulation "
            "(record_trace=True)"
        )
    if n_bins < 1:
        raise SimulationError("need at least one bin")
    if window_ns is None:
        window_ns = max(result.capture_time_ns, result.stw_ns)
    edges = np.linspace(0.0, window_ns, n_bins + 1)
    width = edges[1] - edges[0]

    block_of_net: Dict[int, Optional[str]] = {}
    for g in netlist.gates:
        block_of_net[g.output] = g.block
    for f in netlist.flops:
        block_of_net[f.q] = f.block

    energy = np.zeros(n_bins)
    by_block: Dict[str, np.ndarray] = {}
    caps = parasitics.net_cap_ff
    for t, net, _val in result.trace:
        b = min(n_bins - 1, int(t / window_ns * n_bins)) if window_ns else 0
        e = caps[net] * vdd * vdd
        energy[b] += e
        block = block_of_net.get(net)
        if block is not None:
            if block not in by_block:
                by_block[block] = np.zeros(n_bins)
            by_block[block][b] += e

    # fJ / ns = uW; report mW.
    scale = 1e-3 / width
    return PowerWaveform(
        bin_edges_ns=edges,
        power_mw=energy * scale,
        power_mw_by_block={k: v * scale for k, v in by_block.items()},
        vdd=vdd,
    )


def render_waveform_ascii(
    waveform: PowerWaveform, height: int = 10, title: str = ""
) -> str:
    """Small text rendering of a power waveform."""
    if waveform.n_bins == 0 or waveform.peak_power_mw == 0:
        return "(no activity)"
    top = waveform.peak_power_mw
    lines: List[str] = [title] if title else []
    for h in reversed(range(height)):
        lo = top * h / height
        row = "".join(
            "#" if p > lo else " " for p in waveform.power_mw
        )
        lines.append(f"{top * (h + 1) / height:8.2f} |{row}")
    lines.append(
        " " * 9 + "+" + "-" * waveform.n_bins
    )
    lines.append(
        " " * 10 + f"0 .. {waveform.bin_edges_ns[-1]:.1f} ns  "
        f"(peak {waveform.peak_power_mw:.2f} mW @ "
        f"{waveform.peak_time_ns:.2f} ns)"
    )
    return "\n".join(lines)
