"""CAP and SCAP — the paper's per-pattern power models (Section 2.3).

For pattern *j*:

* ``CAP_j  = (sum C_i * VDD^2) / T`` — cycle average power: switched
  energy averaged over the whole tester cycle,
* ``SCAP_j = (sum C_i * VDD^2) / STW_j`` — switching cycle average
  power: the same energy averaged over the pattern's own switching time
  frame window.

A pattern with modest total switching but a short STW is a high-SCAP
(and thus high-IR-drop-risk) pattern even though its CAP looks benign —
that is the paper's core observation (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..config import joules_to_milliwatts
from ..errors import ConfigError
from ..sim.event import TimingResult


@dataclass(frozen=True)
class PatternPowerProfile:
    """Per-pattern power measurements from one timing simulation."""

    pattern_index: int
    period_ns: float
    stw_ns: float
    n_transitions: int
    energy_fj_total: float
    energy_fj_by_block: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.period_ns <= 0:
            raise ConfigError("period must be positive")

    # ------------------------------------------------------------------
    def energy_fj(self, block: Optional[str] = None) -> float:
        if block is None:
            return self.energy_fj_total
        return self.energy_fj_by_block.get(block, 0.0)

    def cap_mw(self, block: Optional[str] = None) -> float:
        """Cycle average power (whole tester cycle)."""
        return joules_to_milliwatts(self.energy_fj(block), self.period_ns)

    def scap_mw(self, block: Optional[str] = None) -> float:
        """Switching cycle average power (STW window).

        A quiet pattern (no transitions, STW = 0) has zero SCAP.
        """
        if self.stw_ns <= 0.0:
            return 0.0
        return joules_to_milliwatts(self.energy_fj(block), self.stw_ns)

    @property
    def scap_to_cap_ratio(self) -> float:
        """SCAP/CAP = period/STW; ≈2 when the STW is half the cycle."""
        if self.stw_ns <= 0.0:
            return 0.0
        return self.period_ns / self.stw_ns

    @classmethod
    def from_timing(
        cls,
        pattern_index: int,
        period_ns: float,
        result: TimingResult,
    ) -> "PatternPowerProfile":
        """Build a profile straight from a timing-simulation result."""
        return cls(
            pattern_index=pattern_index,
            period_ns=period_ns,
            stw_ns=result.stw_ns,
            n_transitions=result.n_transitions,
            energy_fj_total=result.energy_fj_total,
            energy_fj_by_block=dict(result.energy_fj_by_block),
        )
