"""Static (zero-simulation) SCAP upper bounds for the DRC pre-screen.

The paper's flow pays for a timing simulation per pattern to measure
SCAP.  Before spending that, a *sound upper bound* computed purely from
netlist structure and extracted parasitics can already classify blocks:

* bound <= threshold  — the block can **never** violate its SCAP limit,
  no pattern needs power simulation for it;
* bound > threshold   — the block *may* violate and needs the full
  noise-aware treatment.

Soundness argument (matches :class:`~repro.sim.event.EventTimingSim`
semantics exactly):

1.  **Toggle counts.**  The event simulator seeds one launch event per
    launch-capable flop whose Q changes, and every applied transition
    on a net schedules exactly one candidate event per fanout gate.
    Value filtering at fire time only ever *drops* events.  Hence the
    applied-transition count of a gate output is at most the sum of its
    inputs' counts, and a launch flop Q toggles at most once.  The
    propagated bound ``N(q of launch flop) = 1``, ``N(PI) = N(other
    flop Q) = 0``, ``N(gate output) = sum N(inputs)`` (in levelised
    order) therefore dominates every net's simulated toggle count.

2.  **Energy.**  Each applied transition of net *i* dissipates
    ``C_i * VDD^2`` attributed to the driver's block, so block energy
    is at most ``sum_i N_i * C_i * VDD^2`` over nets driven in the
    block.

3.  **Window.**  The simulator's STW is the time of the *last* applied
    transition, and the first applied transition is a launch event at
    ``insertion_delay + clock-to-Q`` of its flop.  STW is therefore at
    least the minimum launch-event time over the flops that toggle —
    and a minimum over a subset can only be larger than the minimum
    over all launch-capable flops.

SCAP = energy / STW, so ``bound_energy / stw_floor`` upper-bounds the
simulated SCAP of every pattern.  :meth:`pattern_upper_bounds_mw`
tightens both sides per pattern using one zero-delay logic pass (a
*logic* simulation — the pre-screen promise is "before any *timing*
simulation").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..config import VDD_NOMINAL, joules_to_milliwatts
from ..errors import ConfigError
from ..netlist.levelize import levelize
from ..sim.delays import DelayModel
from ..sim.logic import LogicSim, loc_launch_capture
from ..soc.design import SocDesign


class StaticScapBound:
    """Per-block SCAP upper bounds for one design + clock domain."""

    def __init__(
        self,
        design: SocDesign,
        domain: Optional[str] = None,
        vdd: float = VDD_NOMINAL,
        delays: Optional[DelayModel] = None,
    ):
        self.design = design
        self.domain = (
            domain if domain is not None else design.dominant_domain()
        )
        if self.domain not in design.domains:
            raise ConfigError(f"unknown domain {self.domain!r}")
        self.vdd = vdd
        netlist = design.netlist
        self.delays = (
            delays
            if delays is not None
            else DelayModel(netlist, design.parasitics)
        )

        # Launch-capable flops and their launch-event times, mirroring
        # ScapCalculator (negative-edge cells never launch).
        tree = design.clock_trees[self.domain]
        self.launch_time_ns: Dict[int, float] = {}
        for fi, flop in enumerate(netlist.flops):
            if flop.clock_domain != self.domain or flop.edge != "pos":
                continue
            self.launch_time_ns[fi] = (
                tree.insertion_delay_ns(fi) + float(self.delays.flop_ck2q_ns[fi])
            )

        # Block attribution of a net = its driver's block (the event
        # simulator uses the identical mapping).
        self._block_of_net: List[Optional[str]] = [None] * netlist.n_nets
        for g in netlist.gates:
            self._block_of_net[g.output] = g.block
        for f in netlist.flops:
            self._block_of_net[f.q] = f.block
        self._energy_of_net = design.parasitics.net_cap_ff * vdd * vdd

        self._gate_order, _levels = levelize(netlist)
        self._logic: Optional[LogicSim] = None

    # ------------------------------------------------------------------
    @property
    def energy_of_net_fj(self) -> np.ndarray:
        """Per-net switching energy of one transition (``C * VDD^2``)."""
        return self._energy_of_net

    @property
    def stw_floor_ns(self) -> float:
        """Earliest possible launch event — the smallest STW any
        pattern that switches anything can exhibit."""
        if not self.launch_time_ns:
            return 0.0
        return min(self.launch_time_ns.values())

    def toggle_bounds(self, seeds: Optional[Set[int]] = None) -> np.ndarray:
        """Per-net upper bound on applied transition counts.

        ``seeds`` restricts the launch flops assumed to toggle; the
        default assumes every launch-capable flop toggles (the
        block-level worst case).  Floats, because the bound grows
        multiplicatively with logic depth.
        """
        netlist = self.design.netlist
        bound = np.zeros(netlist.n_nets, dtype=float)
        flop_ids = self.launch_time_ns if seeds is None else seeds
        for fi in flop_ids:
            bound[netlist.flops[fi].q] = 1.0
        for gi in self._gate_order:
            gate = netlist.gates[gi]
            total = 0.0
            for net in gate.inputs:
                total += bound[net]
            bound[gate.output] = total
        return bound

    def block_energy_bounds_fj(
        self, seeds: Optional[Set[int]] = None
    ) -> Dict[str, float]:
        """Upper bound on switched energy per block (fJ)."""
        bound = self.toggle_bounds(seeds)
        energy: Dict[str, float] = {}
        for net in np.nonzero(bound)[0]:
            block = self._block_of_net[net]
            if block is None:
                continue
            energy[block] = energy.get(block, 0.0) + float(
                bound[net] * self._energy_of_net[net]
            )
        return energy

    def block_upper_bounds_mw(self) -> Dict[str, float]:
        """Worst-case SCAP per block over *all* possible patterns (mW).

        Every block of the design appears, including provably quiet
        ones (bound 0.0).
        """
        energy = self.block_energy_bounds_fj()
        for block in self.design.blocks():
            energy.setdefault(block, 0.0)
        return self._to_mw(energy, self.stw_floor_ns)

    # ------------------------------------------------------------------
    # vectorised many-seed-set API (SOC test scheduling's cost model)
    # ------------------------------------------------------------------
    def toggle_bounds_many(
        self, seed_sets: Sequence[Set[int]]
    ) -> np.ndarray:
        """Per-net toggle bounds for many seed sets in one pass.

        Row *j* equals ``toggle_bounds(seed_sets[j])``, but the
        levelised propagation walks the gate list once with the seed
        axis vectorised — scheduling thousands of blocks pays one gate
        sweep, not one per block.
        """
        netlist = self.design.netlist
        bound = np.zeros((len(seed_sets), netlist.n_nets), dtype=float)
        for j, seeds in enumerate(seed_sets):
            for fi in seeds:
                bound[j, netlist.flops[fi].q] = 1.0
        for gi in self._gate_order:
            gate = netlist.gates[gi]
            bound[:, gate.output] = bound[:, list(gate.inputs)].sum(axis=1)
        return bound

    def launch_flops_by_block(self) -> Dict[str, Set[int]]:
        """Launch-capable flops of this domain, grouped by block."""
        netlist = self.design.netlist
        by_block: Dict[str, Set[int]] = {
            b: set() for b in self.design.blocks()
        }
        for fi in self.launch_time_ns:
            block = netlist.flops[fi].block
            if block in by_block:
                by_block[block].add(fi)
        return by_block

    def test_power_bounds_mw(self) -> Dict[str, float]:
        """Chip-wide SCAP upper bound while testing each block (mW).

        The scheduler's per-session cost model: when only block *b*'s
        scan cells launch transitions (every other block held quiet by
        fill-0), the chip-wide switched energy is bounded by the toggle
        bound seeded from *b*'s launch flops — summed over *all* nets,
        because *b*'s activity propagates into its neighbours.  The
        window floor is the earliest launch event among *b*'s flops.
        Blocks with no launch-capable flop in the domain bound to 0.0.

        Computed for every block in one vectorised gate sweep, so
        scheduling needs no simulation regardless of block count.
        """
        blocks = self.design.blocks()
        by_block = self.launch_flops_by_block()
        seed_sets = [by_block[b] for b in blocks]
        bound = self.toggle_bounds_many(seed_sets)
        energy_fj = bound @ self._energy_of_net
        out: Dict[str, float] = {}
        for j, block in enumerate(blocks):
            seeds = seed_sets[j]
            if not seeds:
                out[block] = 0.0
                continue
            floor = min(self.launch_time_ns[fi] for fi in seeds)
            out.update(
                self._to_mw({block: float(energy_fj[j])}, floor)
            )
        return out

    def block_bound_matrix(
        self,
    ) -> Tuple[List[str], np.ndarray]:
        """Energy-attribution matrix for per-block test sessions (fJ).

        Entry ``[i, j]`` bounds the switched energy *attributed to*
        block ``blocks[j]`` while *testing* block ``blocks[i]`` — the
        row sums are :meth:`test_power_bounds_mw`'s energies, the
        off-diagonal mass is the collateral switching a session induces
        in its neighbours.  One vectorised sweep for all blocks.
        """
        blocks = self.design.blocks()
        by_block = self.launch_flops_by_block()
        bound = self.toggle_bounds_many([by_block[b] for b in blocks])
        col_of: Dict[str, int] = {b: j for j, b in enumerate(blocks)}
        attribution = np.zeros(
            (len(blocks), len(blocks)), dtype=float
        )
        weighted = bound * self._energy_of_net[np.newaxis, :]
        owner_idx = np.array(
            [
                col_of.get(owner, -1) if owner is not None else -1
                for owner in self._block_of_net
            ],
            dtype=int,
        )
        for j in range(len(blocks)):
            attribution[:, j] = weighted[:, owner_idx == j].sum(axis=1)
        return blocks, attribution

    # ------------------------------------------------------------------
    def pattern_upper_bounds_mw(self, v1: Dict[int, int]) -> Dict[str, float]:
        """Per-block SCAP upper bound for one pattern (mW).

        Runs a single zero-delay launch-to-capture *logic* pass to find
        which launch flops actually toggle, then seeds the bound with
        only those — tighter than the block-level bound, still sound,
        still with no timing simulation.
        """
        seeds = self.toggling_launch_flops(v1)
        if not seeds:
            return {b: 0.0 for b in self.design.blocks()}
        floor = min(self.launch_time_ns[fi] for fi in seeds)
        energy = self.block_energy_bounds_fj(seeds)
        for block in self.design.blocks():
            energy.setdefault(block, 0.0)
        return self._to_mw(energy, floor)

    def toggling_launch_flops(self, v1: Dict[int, int]) -> Set[int]:
        """Launch-capable flops whose Q changes at the launch edge."""
        if self._logic is None:
            self._logic = LogicSim(self.design.netlist)
        cyc = loc_launch_capture(self._logic, v1, self.domain)
        netlist = self.design.netlist
        return {
            fi
            for fi in self.launch_time_ns
            if (cyc.launch_state[fi] & 1)
            != (cyc.frame1[netlist.flops[fi].q] & 1)
        }

    # ------------------------------------------------------------------
    def screen_blocks(
        self, thresholds_mw: Dict[str, float]
    ) -> Dict[str, Dict[str, float]]:
        """Compare the static bound against per-block SCAP thresholds.

        Returns per block: ``bound_mw``, ``threshold_mw`` and
        ``provably_safe`` (1.0/0.0 — the bound cannot be exceeded by
        any pattern when safe).  Blocks without a threshold are
        omitted.
        """
        bounds = self.block_upper_bounds_mw()
        screen: Dict[str, Dict[str, float]] = {}
        for block, limit in thresholds_mw.items():
            bound = bounds.get(block, 0.0)
            screen[block] = {
                "bound_mw": bound,
                "threshold_mw": limit,
                "provably_safe": 1.0 if bound <= limit else 0.0,
            }
        return screen

    # ------------------------------------------------------------------
    @staticmethod
    def _to_mw(
        energy_fj: Dict[str, float], window_ns: float
    ) -> Dict[str, float]:
        if window_ns <= 0.0:
            return {b: 0.0 for b in energy_fj}
        return {
            b: joules_to_milliwatts(e, window_ns)
            for b, e in energy_fj.items()
        }
