"""Switched-energy bookkeeping helpers.

All dynamic energy in the reproduction is ``C * VDD^2`` per net toggle
(femtofarads and volts give femtojoules), matching the paper's CAP/SCAP
definitions; these helpers derive per-net and clock-tree energies used
by the power and IR-drop layers.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..config import VDD_NOMINAL
from ..netlist.parasitics import ParasiticModel
from ..sim.event import TimingResult
from ..soc.clocks import ClockTree


def pattern_energy_by_net(
    result: TimingResult,
    parasitics: ParasiticModel,
    vdd: float = VDD_NOMINAL,
) -> np.ndarray:
    """Energy (fJ) dissipated on each net during a simulated cycle."""
    return result.toggles * parasitics.net_cap_ff * vdd * vdd


def clock_tree_cycle_energy_fj(
    tree: ClockTree, vdd: float = VDD_NOMINAL, edges: int = 2
) -> float:
    """Energy of the clock tree over one test cycle.

    Every buffer output toggles once per clock edge; a launch-to-capture
    cycle has two edges (``edges=2``), a single-edge window one.
    """
    return tree.switched_cap_ff() * vdd * vdd * edges


def clock_buffer_energies_fj(
    tree: ClockTree, vdd: float = VDD_NOMINAL, edges: int = 1
) -> Dict[int, float]:
    """Per-buffer switched energy (fJ) for the given number of edges.

    Keyed by buffer index within the tree; used to inject clock-network
    currents at the right floorplan locations during IR analysis.
    """
    lib = tree.library
    out: Dict[int, float] = {}
    for bi, buf in enumerate(tree.buffers):
        cap = lib.cell(buf.cell).output_cap_ff + buf.load_ff
        out[bi] = cap * vdd * vdd * edges
    return out


def active_clock_buffers(tree: ClockTree, active_flops) -> set:
    """Buffers that must toggle when only *active_flops* need clocks.

    Models ideal clock gating: a leaf buffer is live when any of its
    flops is active; an interior buffer when any descendant leaf is —
    computed by walking each live leaf's path to the root.
    """
    active = set()
    flops = set(active_flops)
    for fi, leaf in tree.leaf_of_flop.items():
        if fi in flops:
            active.update(tree.path_to_root(leaf))
    return active


def gated_clock_buffer_energies_fj(
    tree: ClockTree,
    active_flops,
    vdd: float = VDD_NOMINAL,
    edges: int = 1,
) -> Dict[int, float]:
    """Per-buffer energies under ideal clock gating.

    Buffers outside the active cone contribute zero (their integrated
    clock gates hold them quiet); live buffers toggle as usual.
    """
    live = active_clock_buffers(tree, active_flops)
    energies = clock_buffer_energies_fj(tree, vdd, edges)
    return {bi: (e if bi in live else 0.0)
            for bi, e in energies.items()}
