"""Vectorless (statistical) average switching power per block.

Reproduces the paper's Section 2.2 analysis: assume every net toggles
with a fixed probability per cycle (30 % — deliberately pessimistic vs
the customary 20 %, because test switching exceeds functional) and
average the dissipated energy over an analysis window:

* **Case 1** — the full clock period (what rail-analysis tools report
  by default),
* **Case 2** — half the period (the empirically observed average
  switching time frame window), which doubles every block's average
  power and becomes the SCAP threshold used to screen patterns.

Clock-tree energy is included deterministically (buffers toggle every
cycle regardless of data activity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..config import STATISTICAL_TOGGLE_RATE, VDD_NOMINAL, joules_to_milliwatts
from ..errors import ConfigError
from ..soc.design import SocDesign
from .energy import clock_buffer_energies_fj


@dataclass(frozen=True)
class BlockPowerStats:
    """Average switching power of one block over one analysis window."""

    block: str
    window_ns: float
    logic_energy_fj: float
    clock_energy_fj: float

    @property
    def total_energy_fj(self) -> float:
        return self.logic_energy_fj + self.clock_energy_fj

    @property
    def avg_power_mw(self) -> float:
        return joules_to_milliwatts(self.total_energy_fj, self.window_ns)


def statistical_block_power(
    design: SocDesign,
    domain: Optional[str] = None,
    toggle_rate: float = STATISTICAL_TOGGLE_RATE,
    window_fraction: float = 1.0,
    vdd: float = VDD_NOMINAL,
    include_clock: bool = True,
) -> Dict[str, BlockPowerStats]:
    """Per-block statistical average power.

    Parameters
    ----------
    design:
        The SOC.
    domain:
        Clock domain whose period defines the window (defaults to the
        dominant domain, clka in the case study).
    toggle_rate:
        Per-net toggle probability per cycle.
    window_fraction:
        1.0 = Case 1 (full period), 0.5 = Case 2 (half period).
    include_clock:
        Charge clock buffers (one toggle per edge, two edges per cycle).
    """
    if not 0.0 < window_fraction <= 1.0:
        raise ConfigError(
            f"window_fraction must be in (0, 1], got {window_fraction}"
        )
    if not 0.0 <= toggle_rate <= 1.0:
        raise ConfigError(f"toggle_rate must be in [0, 1], got {toggle_rate}")
    if domain is None:
        domain = design.dominant_domain()
    period_ns = design.domains[domain].period_ns
    window_ns = period_ns * window_fraction

    netlist = design.netlist
    caps = design.parasitics.net_cap_ff
    logic_fj: Dict[str, float] = {b: 0.0 for b in design.blocks()}
    unit = vdd * vdd * toggle_rate
    for g in netlist.gates:
        if g.block in logic_fj:
            logic_fj[g.block] += caps[g.output] * unit
    for f in netlist.flops:
        if f.block in logic_fj:
            logic_fj[f.block] += caps[f.q] * unit

    clock_fj: Dict[str, float] = {b: 0.0 for b in design.blocks()}
    if include_clock:
        for tree in design.clock_trees.values():
            energies = clock_buffer_energies_fj(tree, vdd, edges=2)
            for bi, energy in energies.items():
                block = design.floorplan.block_at(*tree.buffers[bi].pos)
                if block in clock_fj:
                    clock_fj[block] += energy

    return {
        b: BlockPowerStats(b, window_ns, logic_fj[b], clock_fj[b])
        for b in design.blocks()
    }


def chip_power_mw(stats: Dict[str, BlockPowerStats]) -> float:
    """Total chip average power over the blocks' common window."""
    return sum(s.avg_power_mw for s in stats.values())
