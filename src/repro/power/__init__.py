"""Power models: CAP, SCAP, statistical (vectorless) analysis and the
per-pattern SCAP calculator (the paper's VCS-PLI substitute).
"""

from .energy import (
    active_clock_buffers,
    clock_tree_cycle_energy_fj,
    gated_clock_buffer_energies_fj,
    pattern_energy_by_net,
)
from .scap import PatternPowerProfile
from .statistical import BlockPowerStats, statistical_block_power
from .calculator import ScapCalculator
from .waveform_power import PowerWaveform, power_waveform, render_waveform_ascii

__all__ = [
    "BlockPowerStats",
    "PatternPowerProfile",
    "PowerWaveform",
    "ScapCalculator",
    "active_clock_buffers",
    "clock_tree_cycle_energy_fj",
    "gated_clock_buffer_energies_fj",
    "pattern_energy_by_net",
    "power_waveform",
    "render_waveform_ascii",
    "statistical_block_power",
]
