"""The SCAP calculator — the paper's Figure 5 flow as working code.

The paper plugs a PLI routine into Synopsys VCS gate-level timing
simulation: it watches every net transition inside the launch-to-capture
window, charges the instance's extracted output capacitance, tracks the
switching time frame window and reports per-pattern SCAP without writing
VCD files.  :class:`ScapCalculator` is the same measurement loop built
on our own simulators:

``design (netlist) + patterns  ->  timing simulation (event/fast)
+ extracted parasitics (C_i)   ->  per-pattern power profile``

It also returns the raw :class:`~repro.sim.event.TimingResult` when the
caller needs arrivals (endpoint delays, dynamic IR-drop).

Throughput: :meth:`ScapCalculator.profile_patterns` grades a whole
pattern set at once — the launch-to-capture logic simulation runs
bit-parallel over machine-word lanes (so its cost is amortised across
the lane instead of paid twice per pattern), per-pattern timing
simulations optionally fan out across a process pool, and a digest-
keyed profile cache short-circuits launch states that were already
simulated.  All paths are bit-exact with per-pattern
:meth:`profile_pattern`.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import VDD_NOMINAL
from ..errors import ConfigError
from ..obs import current_telemetry
from ..perf.cache import PatternProfileCache, digest_key
from ..perf.dispatch import current_dispatch, decide_scap, wants_auto
from ..perf.pool import chunk_slices, pool_map, resolve_workers
from ..perf.shm import resolve_matrix, shared_matrix, shm_available
from ..sim.delays import DelayModel
from ..sim.event import EventTimingSim, TimingResult, build_launch_events
from ..sim.fasttiming import FastTimingSim
from ..sim.logic import (
    LogicSim,
    launch_capture_with_state,
    loc_launch_capture,
    pack_matrix,
)
from ..soc.design import SocDesign
from .scap import PatternPowerProfile

ENGINES = ("event", "fast")

#: Lane width for batched grading: one machine word keeps the packed
#: bigints in CPython's fast small-int paths and lets the per-pattern
#: frame extraction vectorise through uint64 numpy shifts.
MAX_LANE_WIDTH = 64


class ScapCalculator:
    """Per-pattern SCAP measurement for one design + clock domain."""

    def __init__(
        self,
        design: SocDesign,
        domain: Optional[str] = None,
        engine: str = "event",
        vdd: float = VDD_NOMINAL,
        delays: Optional[DelayModel] = None,
        cache: Optional[PatternProfileCache] = None,
    ):
        if engine not in ENGINES:
            raise ConfigError(f"engine must be one of {ENGINES}")
        self.design = design
        self.domain = domain if domain is not None else design.dominant_domain()
        if self.domain not in design.domains:
            raise ConfigError(f"unknown domain {self.domain!r}")
        self.engine = engine
        self.vdd = vdd
        self.period_ns = design.domains[self.domain].period_ns
        self.cache = cache

        netlist = design.netlist
        self.logic = LogicSim(netlist)
        # Workers rebuild the calculator from (design, domain, engine,
        # vdd) alone; a caller-supplied delay model cannot be
        # reproduced there, so it pins the calculator to serial mode.
        self._default_delays = delays is None
        self.delays = (
            delays if delays is not None
            else DelayModel(netlist, design.parasitics)
        )
        self._event = EventTimingSim(
            netlist, self.delays, design.parasitics, vdd
        )
        self._fast = FastTimingSim(
            netlist, self.delays, design.parasitics, vdd
        )

        # Launch-edge clock arrival per pulsed flop.  Negative-edge cells
        # (dedicated chain) are masked during the at-speed cycle and do
        # not launch.
        tree = design.clock_trees[self.domain]
        self.launch_time: Dict[int, float] = {}
        for fi, flop in enumerate(netlist.flops):
            if flop.clock_domain != self.domain or flop.edge != "pos":
                continue
            self.launch_time[fi] = tree.insertion_delay_ns(fi)

        # Cache context: anything that changes the simulation result
        # must key the digest (the design token keeps one shared cache
        # safe across calculators).
        self._cache_context = (
            netlist.name,
            netlist.n_nets,
            netlist.n_gates,
            netlist.n_flops,
            self.domain,
            self.engine,
            round(self.vdd, 9),
            round(self.period_ns, 9),
        )

    # ------------------------------------------------------------------
    def simulate_pattern(
        self,
        v1: Dict[int, int],
        record_trace: bool = False,
        protocol: str = "loc",
        v2: Optional[Dict[int, int]] = None,
    ) -> TimingResult:
        """Timing-simulate one pattern's launch-to-capture cycle.

        ``protocol`` selects the launch mechanism: ``"loc"`` (default),
        ``"los"`` (V2 = V1 shifted along the scan chains; the design
        must carry a scan config) or ``"es"`` (explicit ``v2``).
        """
        if protocol == "loc":
            cyc = loc_launch_capture(self.logic, v1, self.domain)
        elif protocol == "los":
            cyc = launch_capture_with_state(
                self.logic, v1, self._los_shift(v1), self.domain
            )
        elif protocol == "es":
            if v2 is None:
                raise ConfigError("enhanced-scan simulation needs v2")
            cyc = launch_capture_with_state(self.logic, v1, v2, self.domain)
        else:
            raise ConfigError(f"unknown protocol {protocol!r}")
        launch = {fi: cyc.launch_state[fi] for fi in self.launch_time}
        if self.engine == "event":
            events = build_launch_events(
                self.design.netlist,
                cyc.frame1,
                launch,
                self.launch_time,
                self.delays.flop_ck2q_ns,
            )
            return self._event.simulate(
                cyc.frame1,
                events,
                capture_time_ns=self.period_ns,
                record_trace=record_trace,
            )
        return self._fast.simulate(
            cyc.frame1,
            cyc.frame2,
            launch,
            self.launch_time,
            capture_time_ns=self.period_ns,
        )

    def profile_pattern(
        self, pattern, index: Optional[int] = None
    ) -> PatternPowerProfile:
        """SCAP/CAP profile of one pattern (Pattern object or v1 dict)."""
        v1, idx = _as_v1(pattern, index)
        if self.cache is not None:
            key = self._profile_key(self._v1_array(v1), "loc")
            hit = self.cache.get(key)
            if hit is not None:
                return dataclasses.replace(hit, pattern_index=idx)
        result = self.simulate_pattern(v1)
        profile = PatternPowerProfile.from_timing(idx, self.period_ns, result)
        if self.cache is not None:
            self.cache.put(key, profile)
        return profile

    def profile_pattern_with_timing(
        self, pattern, index: Optional[int] = None
    ) -> Tuple[PatternPowerProfile, TimingResult]:
        """Profile plus the raw timing result (arrivals for IR/endpoints)."""
        v1, idx = _as_v1(pattern, index)
        result = self.simulate_pattern(v1)
        return (
            PatternPowerProfile.from_timing(idx, self.period_ns, result),
            result,
        )

    def profile_set(self, pattern_set) -> List[PatternPowerProfile]:
        """Profile every pattern of a :class:`PatternSet` in order."""
        return self.profile_patterns(pattern_set)

    # ------------------------------------------------------------------
    # batched grading
    # ------------------------------------------------------------------
    def profile_patterns(
        self,
        patterns,
        *,
        n_workers: Union[int, str, None] = 1,
        transport: Optional[str] = None,
        lane_width: int = MAX_LANE_WIDTH,
        protocol: str = "loc",
        v2_matrix: Optional[np.ndarray] = None,
        exec_policy=None,
    ) -> List[PatternPowerProfile]:
        """Grade a whole pattern batch; profiles in input order.

        *patterns* is a :class:`~repro.atpg.patterns.PatternSet`, a
        sequence of :class:`~repro.atpg.patterns.Pattern` objects, or a
        raw ``(n_patterns, n_flops)`` 0/1 matrix (row number = pattern
        index).  The results are bit-exact with calling
        :meth:`profile_pattern` per pattern.

        Parameters
        ----------
        n_workers:
            Fan per-pattern timing simulations out across a process
            pool (each worker rebuilds the calculator once).  ``<= 1``
            stays serial; ``"auto"`` lets
            :func:`repro.perf.dispatch.decide_scap` pick batch or pool
            from the work size and usable cores.
        transport:
            How pool workers receive the pattern matrix: ``"inherit"``
            pickles it into initargs, ``"shm"`` ships one packed
            :mod:`repro.perf.shm` segment; work items are always just
            ``(indices, start, stop)`` row ranges.  ``None`` (default)
            decides from matrix size via the ambient
            :class:`~repro.perf.dispatch.DispatchPolicy`.
        lane_width:
            Patterns per bit-parallel logic-simulation lane (clamped to
            one machine word).
        protocol:
            ``"loc"`` (default), ``"los"``, or ``"es"`` (pass
            *v2_matrix*).
        exec_policy:
            Optional :class:`~repro.perf.resilient.RetryPolicy` for
            the pooled path.  ``None`` uses the ambient default — see
            :func:`repro.perf.resilient.execution_policy`.
        """
        indices, matrix = _normalize_patterns(
            patterns, self.design.netlist.n_flops
        )
        n_pat = matrix.shape[0]
        if n_pat == 0:
            return []
        if protocol == "es":
            v2_matrix = np.asarray(v2_matrix) if v2_matrix is not None else None
            if v2_matrix is None or v2_matrix.shape != matrix.shape:
                raise ConfigError(
                    "enhanced-scan grading needs a v2_matrix matching the "
                    "pattern matrix"
                )
        elif protocol not in ("loc", "los"):
            raise ConfigError(f"unknown protocol {protocol!r}")
        if transport not in (None, "inherit", "shm"):
            raise ConfigError("transport must be None, 'inherit' or 'shm'")

        lane_width = max(1, min(int(lane_width), MAX_LANE_WIDTH))
        cache = self.cache if protocol == "loc" and v2_matrix is None else None

        tel = current_telemetry()
        with tel.span(
            "scap.profile_patterns",
            domain=self.domain,
            engine=self.engine,
            n_patterns=n_pat,
        ):
            # Resolve cache hits first; only misses are simulated
            # (identical launch states inside the batch collapse to one
            # simulation).
            out: List[Optional[PatternPowerProfile]] = [None] * n_pat
            keys: List[Optional[str]] = [None] * n_pat
            miss_rows: List[int] = []
            if cache is not None:
                first_row_of_key: Dict[str, int] = {}
                for row in range(n_pat):
                    key = self._profile_key(matrix[row], protocol)
                    keys[row] = key
                    hit = cache.get(key)
                    if hit is not None:
                        out[row] = dataclasses.replace(
                            hit, pattern_index=indices[row]
                        )
                    elif key in first_row_of_key:
                        out[row] = first_row_of_key[key]  # placeholder row
                    else:
                        first_row_of_key[key] = row
                        miss_rows.append(row)
                tel.count(
                    "scap.cache_hits", n_pat - len(miss_rows)
                )
                tel.count("scap.cache_misses", len(miss_rows))
            else:
                miss_rows = list(range(n_pat))

            if miss_rows:
                miss_matrix = matrix[miss_rows]
                miss_indices = [indices[r] for r in miss_rows]
                miss_v2 = (
                    v2_matrix[miss_rows] if v2_matrix is not None else None
                )
                profiles = self._dispatch(
                    miss_indices, miss_matrix, protocol, miss_v2,
                    lane_width, n_workers, transport, exec_policy,
                )
                for row, profile in zip(miss_rows, profiles):
                    out[row] = profile
                    if cache is not None:
                        cache.put(keys[row], profile)

            # Second pass: rows that aliased an in-batch duplicate.
            for row in range(n_pat):
                if isinstance(out[row], int):
                    out[row] = dataclasses.replace(
                        out[out[row]], pattern_index=indices[row]
                    )
            tel.count("scap.patterns_profiled", n_pat)
            return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        indices: Sequence[int],
        matrix: np.ndarray,
        protocol: str,
        v2_matrix: Optional[np.ndarray],
        lane_width: int,
        n_workers: Union[int, str, None],
        transport: Optional[str] = None,
        exec_policy=None,
    ) -> List[PatternPowerProfile]:
        n_rows = matrix.shape[0]
        if wants_auto(n_workers):
            decision = decide_scap(n_rows, matrix_bytes=int(matrix.nbytes))
            eff = decision.n_workers if decision.mode == "pool" else 1
            use_shm = (
                decision.use_shm if transport is None else transport == "shm"
            )
        else:
            eff = resolve_workers(n_workers, n_rows)
            if transport is None:
                use_shm = (
                    int(matrix.nbytes) // 8
                    >= current_dispatch().shm_min_bytes
                )
            else:
                use_shm = transport == "shm"
        if eff > 1 and not self._default_delays:
            warnings.warn(
                "custom delay models cannot be rebuilt in workers; "
                "grading serially",
                RuntimeWarning,
                stacklevel=3,
            )
            eff = 1
        use_shm = use_shm and eff > 1 and shm_available()
        if eff <= 1:
            return self._profile_serial(
                indices, matrix, protocol, v2_matrix, lane_width
            )
        # The matrix ships once per worker (initargs — shm handle or
        # pickled inline); items shrink to (indices, start, stop) row
        # ranges instead of each dragging its own matrix slice along.
        slices = chunk_slices(n_rows, eff * 2)
        items = [
            (tuple(indices[start:stop]), start, stop)
            for start, stop in slices
        ]
        with shared_matrix(
            matrix if use_shm else None
        ) as h1, shared_matrix(
            v2_matrix if use_shm else None
        ) as h2:
            results = pool_map(
                _scap_worker_task,
                items,
                n_workers=eff,
                policy=exec_policy,
                initializer=_scap_worker_init,
                initargs=(
                    self.design, self.domain, self.engine, self.vdd,
                    protocol, lane_width,
                    h1 if h1 is not None else matrix,
                    h2 if h2 is not None else v2_matrix,
                ),
            )
        merged: List[PatternPowerProfile] = []
        for part in results:
            merged.extend(part)
        return merged

    def _profile_serial(
        self,
        indices: Sequence[int],
        matrix: np.ndarray,
        protocol: str,
        v2_matrix: Optional[np.ndarray],
        lane_width: int,
    ) -> List[PatternPowerProfile]:
        tel = current_telemetry()
        profiles: List[PatternPowerProfile] = []
        for start in range(0, matrix.shape[0], lane_width):
            stop = start + lane_width
            with tel.span(
                "scap.lane", start=start, width=min(stop, matrix.shape[0]) - start
            ):
                profiles.extend(
                    self._profile_lane(
                        indices[start:stop],
                        matrix[start:stop],
                        protocol,
                        v2_matrix[start:stop]
                        if v2_matrix is not None
                        else None,
                    )
                )
        return profiles

    def _profile_lane(
        self,
        indices: Sequence[int],
        lane: np.ndarray,
        protocol: str,
        v2_lane: Optional[np.ndarray],
    ) -> List[PatternPowerProfile]:
        """One machine-word lane: bit-parallel logic simulation, then a
        per-pattern timing simulation on the extracted frames."""
        n_lane = lane.shape[0]
        packed, mask = pack_matrix(lane)
        if protocol == "loc":
            cyc = loc_launch_capture(self.logic, packed, self.domain, mask=mask)
        elif protocol == "los":
            cyc = launch_capture_with_state(
                self.logic, packed, self._los_shift(packed), self.domain,
                mask=mask,
            )
        else:  # "es"
            v2_packed, _ = pack_matrix(v2_lane)
            cyc = launch_capture_with_state(
                self.logic, packed, v2_packed, self.domain, mask=mask
            )
        one = np.uint64(1)
        f1_words = np.array(cyc.frame1, dtype=np.uint64)
        f2_words = (
            np.array(cyc.frame2, dtype=np.uint64)
            if self.engine == "fast"
            else None
        )
        launch_items = [
            (fi, cyc.launch_state[fi]) for fi in self.launch_time
        ]
        netlist = self.design.netlist
        ck2q = self.delays.flop_ck2q_ns
        profiles: List[PatternPowerProfile] = []
        for p in range(n_lane):
            pbit = np.uint64(p)
            frame1 = ((f1_words >> pbit) & one).astype(np.int64).tolist()
            launch = {fi: (word >> p) & 1 for fi, word in launch_items}
            if self.engine == "event":
                events = build_launch_events(
                    netlist, frame1, launch, self.launch_time, ck2q
                )
                result = self._event.simulate(
                    frame1, events, capture_time_ns=self.period_ns
                )
            else:
                frame2 = ((f2_words >> pbit) & one).astype(np.int64).tolist()
                result = self._fast.simulate(
                    frame1, frame2, launch, self.launch_time,
                    capture_time_ns=self.period_ns,
                )
            profiles.append(
                PatternPowerProfile.from_timing(
                    indices[p], self.period_ns, result
                )
            )
        return profiles

    # ------------------------------------------------------------------
    def _los_shift(self, v1: Dict[int, int]) -> Dict[int, int]:
        """V2 = V1 shifted one chain position (packed or single-bit)."""
        if self.design.scan is None:
            raise ConfigError("LOS simulation needs scan chains")
        shifted: Dict[int, int] = {}
        for chain in self.design.scan.chains:
            for pos, fi in enumerate(chain.flops):
                shifted[fi] = (
                    0 if pos == 0 else v1.get(chain.flops[pos - 1], 0)
                )
        return shifted

    def _v1_array(self, v1: Dict[int, int]) -> np.ndarray:
        arr = np.zeros(self.design.netlist.n_flops, dtype=np.uint8)
        for fi, bit in v1.items():
            arr[fi] = bit & 1
        return arr

    def _profile_key(self, v1_row: np.ndarray, protocol: str) -> str:
        payload = np.ascontiguousarray(
            np.asarray(v1_row, dtype=np.uint8)
        ).tobytes()
        return digest_key(payload, self._cache_context + (protocol,))


# ----------------------------------------------------------------------
# worker-side plumbing (module-level for picklability)
# ----------------------------------------------------------------------
_SCAP_WORKER_STATE: Optional[Tuple] = None


def _scap_worker_init(
    design: SocDesign,
    domain: str,
    engine: str,
    vdd: float,
    protocol: str,
    lane_width: int,
    v1_source=None,
    v2_source=None,
) -> None:
    """Rebuild the calculator once per worker process.

    The pattern matrices arrive either inline or as
    :mod:`repro.perf.shm` handles; tasks then only carry row ranges.
    """
    global _SCAP_WORKER_STATE
    _SCAP_WORKER_STATE = (
        ScapCalculator(design, domain, engine=engine, vdd=vdd),
        protocol,
        lane_width,
        resolve_matrix(v1_source),
        resolve_matrix(v2_source),
    )


def _scap_worker_task(item) -> List[PatternPowerProfile]:
    """Grade one contiguous pattern row range (runs in a worker)."""
    indices, start, stop = item
    calc, protocol, lane_width, v1, v2 = _SCAP_WORKER_STATE
    return calc._profile_serial(
        indices,
        v1[start:stop],
        protocol,
        v2[start:stop] if v2 is not None else None,
        lane_width,
    )


# ----------------------------------------------------------------------
def _normalize_patterns(
    patterns, n_flops: int
) -> Tuple[List[int], np.ndarray]:
    """(indices, (n_patterns, n_flops) uint8 matrix) from any input form."""
    if isinstance(patterns, np.ndarray):
        if patterns.ndim != 2:
            raise ConfigError("pattern matrix must be 2-D")
        if patterns.shape[1] != n_flops and patterns.shape[0]:
            raise ConfigError(
                f"pattern matrix covers {patterns.shape[1]} flops, design "
                f"has {n_flops}"
            )
        matrix = (patterns != 0).astype(np.uint8)
        return list(range(matrix.shape[0])), matrix
    indices: List[int] = []
    rows: List[np.ndarray] = []
    for pos, pattern in enumerate(patterns):
        v1 = getattr(pattern, "v1", None)
        if v1 is None:
            raise ConfigError(
                "profile_patterns needs Pattern objects or a matrix"
            )
        indices.append(int(getattr(pattern, "index", pos)))
        rows.append(np.asarray(v1, dtype=np.uint8))
    if not rows:
        return [], np.zeros((0, n_flops), dtype=np.uint8)
    return indices, np.stack(rows)


def _as_v1(pattern, index: Optional[int]) -> Tuple[Dict[int, int], int]:
    if isinstance(pattern, dict):
        if index is None:
            raise ConfigError("pass index= when profiling a raw v1 dict")
        return pattern, index
    v1 = pattern.v1_dict()
    return v1, pattern.index if index is None else index
