"""The SCAP calculator — the paper's Figure 5 flow as working code.

The paper plugs a PLI routine into Synopsys VCS gate-level timing
simulation: it watches every net transition inside the launch-to-capture
window, charges the instance's extracted output capacitance, tracks the
switching time frame window and reports per-pattern SCAP without writing
VCD files.  :class:`ScapCalculator` is the same measurement loop built
on our own simulators:

``design (netlist) + patterns  ->  timing simulation (event/fast)
+ extracted parasitics (C_i)   ->  per-pattern power profile``

It also returns the raw :class:`~repro.sim.event.TimingResult` when the
caller needs arrivals (endpoint delays, dynamic IR-drop).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..config import VDD_NOMINAL
from ..errors import ConfigError, SimulationError
from ..sim.delays import DelayModel
from ..sim.event import EventTimingSim, TimingResult, build_launch_events
from ..sim.fasttiming import FastTimingSim
from ..sim.logic import LogicSim, launch_capture_with_state, loc_launch_capture
from ..soc.design import SocDesign
from .scap import PatternPowerProfile

ENGINES = ("event", "fast")


class ScapCalculator:
    """Per-pattern SCAP measurement for one design + clock domain."""

    def __init__(
        self,
        design: SocDesign,
        domain: Optional[str] = None,
        engine: str = "event",
        vdd: float = VDD_NOMINAL,
        delays: Optional[DelayModel] = None,
    ):
        if engine not in ENGINES:
            raise ConfigError(f"engine must be one of {ENGINES}")
        self.design = design
        self.domain = domain if domain is not None else design.dominant_domain()
        if self.domain not in design.domains:
            raise ConfigError(f"unknown domain {self.domain!r}")
        self.engine = engine
        self.vdd = vdd
        self.period_ns = design.domains[self.domain].period_ns

        netlist = design.netlist
        self.logic = LogicSim(netlist)
        self.delays = (
            delays if delays is not None
            else DelayModel(netlist, design.parasitics)
        )
        self._event = EventTimingSim(
            netlist, self.delays, design.parasitics, vdd
        )
        self._fast = FastTimingSim(
            netlist, self.delays, design.parasitics, vdd
        )

        # Launch-edge clock arrival per pulsed flop.  Negative-edge cells
        # (dedicated chain) are masked during the at-speed cycle and do
        # not launch.
        tree = design.clock_trees[self.domain]
        self.launch_time: Dict[int, float] = {}
        for fi, flop in enumerate(netlist.flops):
            if flop.clock_domain != self.domain or flop.edge != "pos":
                continue
            self.launch_time[fi] = tree.insertion_delay_ns(fi)

    # ------------------------------------------------------------------
    def simulate_pattern(
        self,
        v1: Dict[int, int],
        record_trace: bool = False,
        protocol: str = "loc",
        v2: Optional[Dict[int, int]] = None,
    ) -> TimingResult:
        """Timing-simulate one pattern's launch-to-capture cycle.

        ``protocol`` selects the launch mechanism: ``"loc"`` (default),
        ``"los"`` (V2 = V1 shifted along the scan chains; the design
        must carry a scan config) or ``"es"`` (explicit ``v2``).
        """
        if protocol == "loc":
            cyc = loc_launch_capture(self.logic, v1, self.domain)
        elif protocol == "los":
            if self.design.scan is None:
                raise ConfigError("LOS simulation needs scan chains")
            shifted: Dict[int, int] = {}
            for chain in self.design.scan.chains:
                for pos, fi in enumerate(chain.flops):
                    shifted[fi] = (
                        0 if pos == 0 else v1.get(chain.flops[pos - 1], 0)
                    )
            cyc = launch_capture_with_state(
                self.logic, v1, shifted, self.domain
            )
        elif protocol == "es":
            if v2 is None:
                raise ConfigError("enhanced-scan simulation needs v2")
            cyc = launch_capture_with_state(self.logic, v1, v2, self.domain)
        else:
            raise ConfigError(f"unknown protocol {protocol!r}")
        launch = {fi: cyc.launch_state[fi] for fi in self.launch_time}
        if self.engine == "event":
            events = build_launch_events(
                self.design.netlist,
                cyc.frame1,
                launch,
                self.launch_time,
                self.delays.flop_ck2q_ns,
            )
            return self._event.simulate(
                cyc.frame1,
                events,
                capture_time_ns=self.period_ns,
                record_trace=record_trace,
            )
        return self._fast.simulate(
            cyc.frame1,
            cyc.frame2,
            launch,
            self.launch_time,
            capture_time_ns=self.period_ns,
        )

    def profile_pattern(
        self, pattern, index: Optional[int] = None
    ) -> PatternPowerProfile:
        """SCAP/CAP profile of one pattern (Pattern object or v1 dict)."""
        v1, idx = _as_v1(pattern, index)
        result = self.simulate_pattern(v1)
        return PatternPowerProfile.from_timing(idx, self.period_ns, result)

    def profile_pattern_with_timing(
        self, pattern, index: Optional[int] = None
    ) -> Tuple[PatternPowerProfile, TimingResult]:
        """Profile plus the raw timing result (arrivals for IR/endpoints)."""
        v1, idx = _as_v1(pattern, index)
        result = self.simulate_pattern(v1)
        return (
            PatternPowerProfile.from_timing(idx, self.period_ns, result),
            result,
        )

    def profile_set(self, pattern_set) -> List[PatternPowerProfile]:
        """Profile every pattern of a :class:`PatternSet` in order."""
        return [self.profile_pattern(p) for p in pattern_set]


def _as_v1(pattern, index: Optional[int]) -> Tuple[Dict[int, int], int]:
    if isinstance(pattern, dict):
        if index is None:
            raise ConfigError("pass index= when profiling a raw v1 dict")
        return pattern, index
    v1 = pattern.v1_dict()
    return v1, pattern.index if index is None else index
