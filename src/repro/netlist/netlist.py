"""The :class:`Netlist` container and its instance records.

A netlist is a flat (block-annotated) gate-level design:

* *nets* are integer ids with string names,
* *gates* are combinational cell instances,
* *flops* are sequential cell instances (D flip-flops, optionally scan),
* *primary inputs/outputs* are nets at the design boundary.

The container is mutable while being built; analysis layers call
:meth:`Netlist.freeze` (or any accessor that needs derived maps, which
freezes implicitly) to build driver/fanout indexes.  Mutation after a
freeze invalidates the caches automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import NetlistError
from .cells import CELL_ARITY
from .library import Library, default_library

#: Driver descriptors: ("gate", gate_index), ("flop", flop_index),
#: ("pi", position-in-primary_inputs). Nets with no driver map to None.
Driver = Tuple[str, int]


@dataclass
class Gate:
    """One combinational cell instance.

    ``inputs`` are net ids in library pin order; ``output`` is the driven
    net id.  ``block`` names the SOC block the instance belongs to and
    ``pos`` is its placement in micrometres (used for wire loads, scan
    ordering and IR-drop tap location).
    """

    name: str
    cell: str
    kind: str
    inputs: Tuple[int, ...]
    output: int
    block: Optional[str] = None
    pos: Optional[Tuple[float, float]] = None


@dataclass
class FlipFlop:
    """One D flip-flop instance (plain or scan).

    The launch/capture clock is identified by ``clock_domain``; ``edge``
    is ``"pos"`` or ``"neg"``.  Scan-chain membership (``chain``,
    ``chain_pos``) is filled in by :mod:`repro.dft.scan`.
    """

    name: str
    cell: str
    d: int
    q: int
    clock_domain: str
    edge: str = "pos"
    is_scan: bool = False
    block: Optional[str] = None
    pos: Optional[Tuple[float, float]] = None
    chain: Optional[int] = None
    chain_pos: Optional[int] = None


class Netlist:
    """A flat gate-level netlist with nets, gates, flops and ports."""

    def __init__(self, name: str, library: Optional[Library] = None):
        self.name = name
        self.library = library if library is not None else default_library()
        self.net_names: List[str] = []
        self._net_index: Dict[str, int] = {}
        self.gates: List[Gate] = []
        self.flops: List[FlipFlop] = []
        self.primary_inputs: List[int] = []
        self.primary_outputs: List[int] = []
        self._frozen = False
        self._driver_of: List[Optional[Driver]] = []
        self._gate_fanouts: List[List[Tuple[int, int]]] = []
        self._flop_d_loads: List[List[int]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_net(self, net_name: str) -> int:
        """Create a net and return its id; names must be unique."""
        if net_name in self._net_index:
            raise NetlistError(f"duplicate net name {net_name!r}")
        self._invalidate()
        nid = len(self.net_names)
        self.net_names.append(net_name)
        self._net_index[net_name] = nid
        return nid

    def net_id(self, net_name: str) -> int:
        """Return the id of an existing net."""
        try:
            return self._net_index[net_name]
        except KeyError:
            raise NetlistError(f"no net named {net_name!r}") from None

    def has_net(self, net_name: str) -> bool:
        return net_name in self._net_index

    def add_primary_input(self, net: int) -> None:
        self._check_net(net)
        self._invalidate()
        self.primary_inputs.append(net)

    def add_primary_output(self, net: int) -> None:
        self._check_net(net)
        self._invalidate()
        self.primary_outputs.append(net)

    def add_gate(
        self,
        name: str,
        cell: str,
        inputs: Sequence[int],
        output: int,
        block: Optional[str] = None,
        pos: Optional[Tuple[float, float]] = None,
    ) -> int:
        """Instantiate a combinational cell; returns the gate index."""
        spec = self.library.cell(cell)
        if spec.is_sequential:
            raise NetlistError(f"{cell!r} is sequential; use add_flop")
        if len(inputs) != CELL_ARITY[spec.kind]:
            raise NetlistError(
                f"gate {name!r}: {spec.kind} needs {CELL_ARITY[spec.kind]} "
                f"inputs, got {len(inputs)}"
            )
        for n in inputs:
            self._check_net(n)
        self._check_net(output)
        self._invalidate()
        self.gates.append(
            Gate(name, cell, spec.kind, tuple(inputs), output, block, pos)
        )
        return len(self.gates) - 1

    def add_flop(
        self,
        name: str,
        cell: str,
        d: int,
        q: int,
        clock_domain: str,
        edge: str = "pos",
        is_scan: bool = False,
        block: Optional[str] = None,
        pos: Optional[Tuple[float, float]] = None,
    ) -> int:
        """Instantiate a flip-flop; returns the flop index."""
        spec = self.library.cell(cell)
        if not spec.is_sequential:
            raise NetlistError(f"{cell!r} is combinational; use add_gate")
        if edge not in ("pos", "neg"):
            raise NetlistError(f"edge must be 'pos' or 'neg', got {edge!r}")
        self._check_net(d)
        self._check_net(q)
        self._invalidate()
        self.flops.append(
            FlipFlop(name, cell, d, q, clock_domain, edge, is_scan, block, pos)
        )
        return len(self.flops) - 1

    # ------------------------------------------------------------------
    # derived maps
    # ------------------------------------------------------------------
    def freeze(self) -> None:
        """Build driver and fanout indexes (idempotent)."""
        if self._frozen:
            return
        n = len(self.net_names)
        driver: List[Optional[Driver]] = [None] * n
        gate_fanouts: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        flop_d_loads: List[List[int]] = [[] for _ in range(n)]

        def set_driver(net: int, who: Driver) -> None:
            if driver[net] is not None:
                raise NetlistError(
                    f"net {self.net_names[net]!r} has multiple drivers: "
                    f"{driver[net]} and {who}"
                )
            driver[net] = who

        for pos, net in enumerate(self.primary_inputs):
            set_driver(net, ("pi", pos))
        for gi, g in enumerate(self.gates):
            set_driver(g.output, ("gate", gi))
            for pin, net in enumerate(g.inputs):
                gate_fanouts[net].append((gi, pin))
        for fi, f in enumerate(self.flops):
            set_driver(f.q, ("flop", fi))
            flop_d_loads[f.d].append(fi)

        self._driver_of = driver
        self._gate_fanouts = gate_fanouts
        self._flop_d_loads = flop_d_loads
        self._frozen = True

    def _invalidate(self) -> None:
        self._frozen = False

    def _check_net(self, net: int) -> None:
        if not 0 <= net < len(self.net_names):
            raise NetlistError(f"net id {net} out of range")

    @property
    def n_nets(self) -> int:
        return len(self.net_names)

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def n_flops(self) -> int:
        return len(self.flops)

    @property
    def scan_flops(self) -> List[int]:
        """Indexes of scan-enabled flops."""
        return [i for i, f in enumerate(self.flops) if f.is_scan]

    def driver_of(self, net: int) -> Optional[Driver]:
        """The driver descriptor of *net* (None for floating nets)."""
        self.freeze()
        return self._driver_of[net]

    def gate_fanouts_of(self, net: int) -> List[Tuple[int, int]]:
        """Gate loads of *net* as ``(gate_index, pin)`` pairs."""
        self.freeze()
        return self._gate_fanouts[net]

    def flop_d_loads_of(self, net: int) -> List[int]:
        """Flop indexes whose D pin is connected to *net*."""
        self.freeze()
        return self._flop_d_loads[net]

    def fanout_count(self, net: int) -> int:
        """Total loads on *net* (gate pins + flop D pins + PO)."""
        self.freeze()
        po = 1 if net in set(self.primary_outputs) else 0
        return len(self._gate_fanouts[net]) + len(self._flop_d_loads[net]) + po

    # ------------------------------------------------------------------
    # traversal helpers
    # ------------------------------------------------------------------
    def transitive_fanout_gates(self, net: int) -> List[int]:
        """Gate indexes reachable from *net* through combinational logic.

        Traversal stops at flop D pins (the sequential boundary).
        """
        self.freeze()
        seen_gates: List[int] = []
        visited = set()
        stack = [net]
        while stack:
            cur = stack.pop()
            for gi, _pin in self._gate_fanouts[cur]:
                if gi not in visited:
                    visited.add(gi)
                    seen_gates.append(gi)
                    stack.append(self.gates[gi].output)
        return seen_gates

    def transitive_fanin_nets(self, net: int) -> List[int]:
        """Net ids in the combinational fan-in cone of *net* (inclusive).

        Traversal stops at PIs and flop Q pins.
        """
        self.freeze()
        order: List[int] = []
        visited = {net}
        stack = [net]
        while stack:
            cur = stack.pop()
            order.append(cur)
            drv = self._driver_of[cur]
            if drv is not None and drv[0] == "gate":
                for src in self.gates[drv[1]].inputs:
                    if src not in visited:
                        visited.add(src)
                        stack.append(src)
        return order

    def instance_positions(self) -> Dict[str, Tuple[float, float]]:
        """Placement of every placed instance, keyed by instance name."""
        out: Dict[str, Tuple[float, float]] = {}
        for g in self.gates:
            if g.pos is not None:
                out[g.name] = g.pos
        for f in self.flops:
            if f.pos is not None:
                out[f.name] = f.pos
        return out

    def stats(self) -> Dict[str, int]:
        """Summary counts used by reports and tests."""
        return {
            "nets": self.n_nets,
            "gates": self.n_gates,
            "flops": self.n_flops,
            "scan_flops": len(self.scan_flops),
            "primary_inputs": len(self.primary_inputs),
            "primary_outputs": len(self.primary_outputs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"<Netlist {self.name!r}: {s['gates']} gates, {s['flops']} flops, "
            f"{s['nets']} nets>"
        )
