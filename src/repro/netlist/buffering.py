"""Fanout buffering — the standard post-synthesis netlist repair.

High-fanout nets (enable lines, widely-read status bits) are slow and
electrically fragile; physical synthesis splits their loads across a
buffer tree.  :func:`insert_fanout_buffers` performs that repair on our
netlists: any net driving more than ``max_fanout`` sinks gets its loads
partitioned into groups, each fed through a new buffer, recursively
until every net is within budget.

The transformation is logically transparent (buffers are identity) —
tests verify simulation equivalence — and improves loaded delays by
splitting capacitance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import NetlistError
from .netlist import Netlist


def fanout_violations(
    netlist: Netlist, max_fanout: int
) -> List[Tuple[int, int]]:
    """Nets whose sink count exceeds *max_fanout*: ``(net, fanout)``.

    Sinks are gate input pins plus flop D pins (primary outputs are
    chip pads, not cell loads).
    """
    if max_fanout < 2:
        raise NetlistError("max_fanout must be >= 2")
    netlist.freeze()
    out: List[Tuple[int, int]] = []
    for net in range(netlist.n_nets):
        fanout = len(netlist.gate_fanouts_of(net)) + len(
            netlist.flop_d_loads_of(net)
        )
        if fanout > max_fanout:
            out.append((net, fanout))
    return out


def insert_fanout_buffers(
    netlist: Netlist,
    max_fanout: int = 12,
    buffer_cell: str = "BUFX4",
) -> int:
    """Buffer every over-loaded net in place; returns buffers added.

    Loads keep their order; each group of ``max_fanout`` sinks moves
    behind a new buffer placed at the driver's location.  If the number
    of groups itself exceeds the budget, the pass repeats (building a
    tree level by level) until the design is clean.
    """
    total_added = 0
    guard = 32  # tree depth guard; log_f(fanout) levels in practice
    while guard:
        guard -= 1
        violations = fanout_violations(netlist, max_fanout)
        if not violations:
            return total_added
        for net, _fanout in violations:
            total_added += _buffer_one_net(
                netlist, net, max_fanout, buffer_cell
            )
    raise NetlistError("fanout buffering did not converge")


def _buffer_one_net(
    netlist: Netlist, net: int, max_fanout: int, buffer_cell: str
) -> int:
    netlist.freeze()
    gate_loads = list(netlist.gate_fanouts_of(net))
    flop_loads = list(netlist.flop_d_loads_of(net))
    loads: List[Tuple[str, int, int]] = [
        ("gate", gi, pin) for gi, pin in gate_loads
    ] + [("flop", fi, 0) for fi in flop_loads]
    if len(loads) <= max_fanout:
        return 0

    drv = netlist.driver_of(net)
    pos = None
    block = None
    if drv is not None and drv[0] == "gate":
        pos = netlist.gates[drv[1]].pos
        block = netlist.gates[drv[1]].block
    elif drv is not None and drv[0] == "flop":
        pos = netlist.flops[drv[1]].pos
        block = netlist.flops[drv[1]].block

    base_name = netlist.net_names[net]
    added = 0
    # Move every load behind a buffer: the net's new fanout is the
    # buffer count (ceil(n / max_fanout) < n), so repeated passes build
    # a tree and always converge.
    groups = [
        loads[i:i + max_fanout] for i in range(0, len(loads), max_fanout)
    ]
    for gidx, group in enumerate(groups):
        uid = netlist.n_nets  # globally unique suffix across passes
        buf_out = netlist.add_net(f"{base_name}__buf{uid}")
        netlist.add_gate(
            f"fobuf_{base_name}_{uid}",
            buffer_cell,
            [net],
            buf_out,
            block=block,
            pos=pos,
        )
        added += 1
        for kind, idx, pin in group:
            if kind == "gate":
                gate = netlist.gates[idx]
                new_inputs = list(gate.inputs)
                new_inputs[pin] = buf_out
                gate.inputs = tuple(new_inputs)
            else:
                netlist.flops[idx].d = buf_out
    netlist._invalidate()
    return added
