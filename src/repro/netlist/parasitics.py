"""Placement-derived wire parasitics (the SPEF/STAR-RCXT substitute).

The paper extracts per-instance output capacitance from a STAR-RCXT SPEF
file; the SCAP calculator then charges ``C_i * VDD^2`` for every output
transition of gate ``G_i``.  We reconstruct the same quantity from the
synthetic placement: the switched capacitance of a net is

``C(net) = C_out(driver) + sum(C_in(sink pins)) + C_wire(net)``

where ``C_wire`` is estimated from the half-perimeter wirelength (HPWL)
of the net's pin bounding box at a per-micrometre unit capacitance, the
standard pre-route wire-load model.  Unplaced designs fall back to a
per-fanout lumped wire cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .netlist import Netlist

#: Unit wire capacitance for a 180 nm-class stack (fF per um of HPWL).
WIRE_CAP_PER_UM = 0.18

#: Fallback wire cap per fanout pin when placement is unavailable (fF).
WIRE_CAP_PER_FANOUT = 4.0

#: Extra wire delay per fanout seen by timing (ns); models RC interconnect
#: without full RC extraction.
WIRE_DELAY_PER_FANOUT_NS = 0.045


@dataclass(frozen=True)
class ParasiticModel:
    """Per-net switched capacitance plus the parameters that produced it.

    ``net_cap_ff[net]`` is the total capacitance charged or discharged
    when *net* toggles.  This is the ``C_i`` of the paper's CAP/SCAP
    formulas, attributed to the net's driver instance.
    """

    net_cap_ff: np.ndarray
    wire_cap_per_um: float
    wire_cap_per_fanout: float

    def cap_of(self, net: int) -> float:
        return float(self.net_cap_ff[net])

    @property
    def total_cap_ff(self) -> float:
        return float(self.net_cap_ff.sum())


def _net_pin_positions(
    netlist: Netlist, net: int
) -> List[Tuple[float, float]]:
    pts: List[Tuple[float, float]] = []
    drv = netlist.driver_of(net)
    if drv is not None:
        kind, idx = drv
        if kind == "gate" and netlist.gates[idx].pos is not None:
            pts.append(netlist.gates[idx].pos)
        elif kind == "flop" and netlist.flops[idx].pos is not None:
            pts.append(netlist.flops[idx].pos)
    for gi, _pin in netlist.gate_fanouts_of(net):
        if netlist.gates[gi].pos is not None:
            pts.append(netlist.gates[gi].pos)
    for fi in netlist.flop_d_loads_of(net):
        if netlist.flops[fi].pos is not None:
            pts.append(netlist.flops[fi].pos)
    return pts


def _hpwl(points: List[Tuple[float, float]]) -> float:
    if len(points) < 2:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def extract_net_caps(
    netlist: Netlist,
    wire_cap_per_um: float = WIRE_CAP_PER_UM,
    wire_cap_per_fanout: float = WIRE_CAP_PER_FANOUT,
) -> ParasiticModel:
    """Build the per-net switched-capacitance table for a design.

    Placement-aware when instance positions exist (HPWL wire model),
    falling back to a per-fanout lumped cap otherwise.
    """
    netlist.freeze()
    lib = netlist.library
    caps = np.zeros(netlist.n_nets, dtype=float)

    # Driver output capacitance.
    for g in netlist.gates:
        caps[g.output] += lib.cell(g.cell).output_cap_ff
    for f in netlist.flops:
        caps[f.q] += lib.cell(f.cell).output_cap_ff

    # Sink pin capacitance.
    for g in netlist.gates:
        spec = lib.cell(g.cell)
        for net in g.inputs:
            caps[net] += spec.input_cap_ff
    for f in netlist.flops:
        caps[f.d] += lib.cell(f.cell).input_cap_ff

    # Wire capacitance.
    for net in range(netlist.n_nets):
        pts = _net_pin_positions(netlist, net)
        fanout = len(netlist.gate_fanouts_of(net)) + len(
            netlist.flop_d_loads_of(net)
        )
        if fanout == 0:
            continue
        if len(pts) >= 2:
            caps[net] += wire_cap_per_um * _hpwl(pts)
        else:
            caps[net] += wire_cap_per_fanout * fanout

    return ParasiticModel(
        net_cap_ff=caps,
        wire_cap_per_um=wire_cap_per_um,
        wire_cap_per_fanout=wire_cap_per_fanout,
    )
