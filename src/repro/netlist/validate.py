"""Structural linting of a netlist — compatibility wrapper.

The checks that used to live here (single driver per net, no floating
gate inputs, no combinational loops, library membership, scan-chain
field consistency) are now individual rules in the :mod:`repro.drc`
registry, which reports structured, severity-ranked
:class:`~repro.drc.violation.Violation` records instead of bare
strings.  ``check_netlist`` survives as a thin wrapper for callers that
only want the old contract: the list of ERROR-severity findings as
human-readable strings, optionally raised as a
:class:`~repro.errors.NetlistError`.

New code should call :func:`repro.drc.check_netlist_drc` (or
:func:`repro.drc.run_drc`) directly and filter by severity/location.
"""

from __future__ import annotations

from typing import List

from ..errors import NetlistError
from .netlist import Netlist


def check_netlist(netlist: Netlist, raise_on_error: bool = False) -> List[str]:
    """Run the structural DRC rules; return ERROR findings as strings.

    Parameters
    ----------
    netlist:
        The design to lint.
    raise_on_error:
        When True, raise :class:`NetlistError` with the combined issue
        list if any ERROR-severity check fails.

    Warning- and info-severity findings (dangling outputs, lockup-latch
    advisories, clock-domain crossings) are *not* returned — the old
    contract was "issues that block a handoff".  Use the DRC report for
    the full picture.
    """
    # Local import: repro.drc imports from repro.netlist, so importing
    # at module level would be circular.
    from ..drc import check_netlist_drc

    report = check_netlist_drc(netlist)
    issues = [
        f"{v.message}" for v in report.errors(include_waived=True)
    ]
    if issues and raise_on_error:
        raise NetlistError("; ".join(issues))
    return issues
