"""Structural linting of a netlist.

`check_netlist` runs the integrity checks a physical-design handoff
would: single driver per net, no floating gate inputs, no combinational
loops, library membership, scan-chain field consistency.  It returns the
list of human-readable issues and can optionally raise on the first.
"""

from __future__ import annotations

from typing import List

from ..errors import NetlistError
from .levelize import levelize
from .netlist import Netlist


def check_netlist(netlist: Netlist, raise_on_error: bool = False) -> List[str]:
    """Run all structural checks; return the list of issues found.

    Parameters
    ----------
    netlist:
        The design to lint.
    raise_on_error:
        When True, raise :class:`NetlistError` with the combined issue
        list if any check fails.
    """
    issues: List[str] = []

    # Driver integrity (duplicate drivers raise inside freeze()).
    try:
        netlist.freeze()
    except NetlistError as exc:
        issues.append(str(exc))
        if raise_on_error:
            raise
        return issues

    driven = set(netlist.primary_inputs)
    driven.update(g.output for g in netlist.gates)
    driven.update(f.q for f in netlist.flops)

    for gi, gate in enumerate(netlist.gates):
        if gate.cell not in netlist.library:
            issues.append(f"gate {gate.name!r} uses unknown cell {gate.cell!r}")
        for pin, net in enumerate(gate.inputs):
            if net not in driven:
                issues.append(
                    f"gate {gate.name!r} pin {pin} reads floating net "
                    f"{netlist.net_names[net]!r}"
                )

    for flop in netlist.flops:
        if flop.cell not in netlist.library:
            issues.append(f"flop {flop.name!r} uses unknown cell {flop.cell!r}")
        if flop.d not in driven:
            issues.append(
                f"flop {flop.name!r} D pin reads floating net "
                f"{netlist.net_names[flop.d]!r}"
            )
        if (flop.chain is None) != (flop.chain_pos is None):
            issues.append(
                f"flop {flop.name!r} has inconsistent chain assignment "
                f"(chain={flop.chain}, chain_pos={flop.chain_pos})"
            )
        if flop.chain is not None and not flop.is_scan:
            issues.append(
                f"flop {flop.name!r} is on chain {flop.chain} but not scan"
            )

    for net in netlist.primary_outputs:
        if net not in driven:
            issues.append(
                f"primary output {netlist.net_names[net]!r} is undriven"
            )

    try:
        levelize(netlist)
    except NetlistError as exc:
        issues.append(str(exc))

    if issues and raise_on_error:
        raise NetlistError("; ".join(issues))
    return issues
