"""Gate-level netlist substrate.

This subpackage provides the structural representation every other layer
builds on: combinational cell kinds and their logic functions
(:mod:`~repro.netlist.cells`), a synthetic 180 nm standard-cell library
(:mod:`~repro.netlist.library`), the :class:`~repro.netlist.netlist.Netlist`
container, levelisation, placement-derived parasitics, a structural
Verilog writer/parser and a structural linter.
"""

from .cells import (
    CELL_ARITY,
    CELL_FUNCTIONS,
    SEQUENTIAL_KINDS,
    evaluate_kind,
    is_combinational_kind,
)
from .library import CellSpec, Library, default_library
from .netlist import Gate, FlipFlop, Netlist
from .buffering import fanout_violations, insert_fanout_buffers
from .levelize import levelize
from .parasitics import ParasiticModel, extract_net_caps
from .validate import check_netlist
from .verilog import parse_verilog, write_verilog

__all__ = [
    "CELL_ARITY",
    "CELL_FUNCTIONS",
    "SEQUENTIAL_KINDS",
    "CellSpec",
    "FlipFlop",
    "Gate",
    "Library",
    "Netlist",
    "ParasiticModel",
    "check_netlist",
    "default_library",
    "evaluate_kind",
    "extract_net_caps",
    "fanout_violations",
    "insert_fanout_buffers",
    "is_combinational_kind",
    "levelize",
    "parse_verilog",
    "write_verilog",
]
