"""Combinational cell kinds and their bit-parallel logic functions.

Logic values are packed into arbitrary-precision Python integers, one bit
per pattern, so a single evaluation of a gate computes its output for
every pattern in a batch at once.  Inverting operators therefore need the
batch ``mask`` (``(1 << n_patterns) - 1``) to avoid Python's infinite
two's-complement sign extension.

The registry :data:`CELL_FUNCTIONS` maps a cell *kind* (the abstract
logic function, e.g. ``"NAND2"``) to its evaluator; the standard-cell
library maps concrete cell names to kinds plus electrical data.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..errors import NetlistError

LogicFn = Callable[[Sequence[int], int], int]


def _inv(ins: Sequence[int], mask: int) -> int:
    return ~ins[0] & mask


def _buf(ins: Sequence[int], mask: int) -> int:
    return ins[0] & mask


def _and(ins: Sequence[int], mask: int) -> int:
    out = mask
    for v in ins:
        out &= v
    return out


def _nand(ins: Sequence[int], mask: int) -> int:
    return ~_and(ins, mask) & mask


def _or(ins: Sequence[int], mask: int) -> int:
    out = 0
    for v in ins:
        out |= v
    return out & mask


def _nor(ins: Sequence[int], mask: int) -> int:
    return ~_or(ins, mask) & mask


def _xor2(ins: Sequence[int], mask: int) -> int:
    return (ins[0] ^ ins[1]) & mask


def _xnor2(ins: Sequence[int], mask: int) -> int:
    return ~(ins[0] ^ ins[1]) & mask


def _mux2(ins: Sequence[int], mask: int) -> int:
    """2:1 multiplexer, inputs ordered ``(d0, d1, sel)``."""
    d0, d1, sel = ins
    return ((d0 & ~sel) | (d1 & sel)) & mask


def _aoi21(ins: Sequence[int], mask: int) -> int:
    """AND-OR-invert: ``~((a & b) | c)`` with inputs ``(a, b, c)``."""
    a, b, c = ins
    return ~((a & b) | c) & mask


def _oai21(ins: Sequence[int], mask: int) -> int:
    """OR-AND-invert: ``~((a | b) & c)`` with inputs ``(a, b, c)``."""
    a, b, c = ins
    return ~((a | b) & c) & mask


def _tie0(ins: Sequence[int], mask: int) -> int:
    return 0


def _tie1(ins: Sequence[int], mask: int) -> int:
    return mask


#: Kind name -> bit-parallel evaluator.
CELL_FUNCTIONS: Dict[str, LogicFn] = {
    "INV": _inv,
    "BUF": _buf,
    "CLKBUF": _buf,
    "AND2": _and,
    "AND3": _and,
    "AND4": _and,
    "NAND2": _nand,
    "NAND3": _nand,
    "NAND4": _nand,
    "OR2": _or,
    "OR3": _or,
    "OR4": _or,
    "NOR2": _nor,
    "NOR3": _nor,
    "NOR4": _nor,
    "XOR2": _xor2,
    "XNOR2": _xnor2,
    "MUX2": _mux2,
    "AOI21": _aoi21,
    "OAI21": _oai21,
    "TIE0": _tie0,
    "TIE1": _tie1,
}

#: Kind name -> number of inputs.
CELL_ARITY: Dict[str, int] = {
    "INV": 1,
    "BUF": 1,
    "CLKBUF": 1,
    "AND2": 2,
    "AND3": 3,
    "AND4": 4,
    "NAND2": 2,
    "NAND3": 3,
    "NAND4": 4,
    "OR2": 2,
    "OR3": 3,
    "OR4": 4,
    "NOR2": 2,
    "NOR3": 3,
    "NOR4": 4,
    "XOR2": 2,
    "XNOR2": 2,
    "MUX2": 3,
    "AOI21": 3,
    "OAI21": 3,
    "TIE0": 0,
    "TIE1": 0,
}

#: Sequential cell kinds; these never appear as combinational gates.
SEQUENTIAL_KINDS = frozenset({"DFF", "SDFF", "DFFN", "SDFFN"})

#: Kinds whose output inverts when exactly one input inverts (used by
#: transition-fault equivalence collapsing through inverter chains).
INVERTING_SINGLE_INPUT_KINDS = frozenset({"INV"})
NONINVERTING_SINGLE_INPUT_KINDS = frozenset({"BUF", "CLKBUF"})


def is_combinational_kind(kind: str) -> bool:
    """Return True if *kind* names a known combinational cell kind."""
    return kind in CELL_FUNCTIONS


def evaluate_kind(kind: str, inputs: Sequence[int], mask: int) -> int:
    """Evaluate one combinational cell kind on packed pattern words.

    Parameters
    ----------
    kind:
        A key of :data:`CELL_FUNCTIONS`.
    inputs:
        Packed input words, one per input pin, in pin order.
    mask:
        ``(1 << n_patterns) - 1``.

    Raises
    ------
    NetlistError
        If *kind* is unknown or the input count does not match its arity.
    """
    fn = CELL_FUNCTIONS.get(kind)
    if fn is None:
        raise NetlistError(f"unknown combinational cell kind {kind!r}")
    if len(inputs) != CELL_ARITY[kind]:
        raise NetlistError(
            f"{kind} expects {CELL_ARITY[kind]} inputs, got {len(inputs)}"
        )
    return fn(inputs, mask)


def controlling_value(kind: str) -> int | None:
    """Return the controlling input value of *kind*, if it has one.

    AND/NAND are controlled by 0, OR/NOR by 1; XOR/XNOR/BUF/INV/MUX have
    no controlling value (None).  Used by PODEM's backtrace heuristics.
    """
    if kind.startswith(("AND", "NAND")):
        return 0
    if kind.startswith(("OR", "NOR")):
        return 1
    return None


def output_inversion(kind: str) -> bool:
    """Whether the kind's output is an inverted function of its inputs.

    Only meaningful for kinds with a controlling value plus INV/BUF; used
    for backtrace parity bookkeeping.
    """
    return kind.startswith(("NAND", "NOR")) or kind in ("INV", "AOI21", "OAI21")
