"""Topological levelisation of a netlist's combinational core.

Gates are ordered so that every gate appears after all gates driving its
inputs.  Sources (level 0 upstream) are primary inputs, flop Q outputs
and tie cells.  A combinational loop raises :class:`NetlistError` and
names one net on the cycle to aid debugging.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

from ..errors import NetlistError
from .netlist import Netlist


def levelize(netlist: Netlist) -> Tuple[List[int], List[int]]:
    """Return ``(order, level)`` for the combinational gates.

    ``order`` lists gate indexes in evaluation order; ``level[gi]`` is the
    logic depth of gate ``gi`` (0 = all inputs are sequential/primary
    sources).

    Raises
    ------
    NetlistError
        If a combinational cycle exists.
    """
    netlist.freeze()
    n_gates = len(netlist.gates)
    pending = [0] * n_gates  # unresolved gate-driven inputs
    level = [0] * n_gates

    for gi, gate in enumerate(netlist.gates):
        for net in gate.inputs:
            drv = netlist.driver_of(net)
            if drv is not None and drv[0] == "gate":
                pending[gi] += 1

    ready = deque(gi for gi in range(n_gates) if pending[gi] == 0)
    order: List[int] = []
    while ready:
        gi = ready.popleft()
        order.append(gi)
        out_net = netlist.gates[gi].output
        for lgi, _pin in netlist.gate_fanouts_of(out_net):
            pending[lgi] -= 1
            if level[gi] + 1 > level[lgi]:
                level[lgi] = level[gi] + 1
            if pending[lgi] == 0:
                ready.append(lgi)

    if len(order) != n_gates:
        stuck = next(gi for gi in range(n_gates) if pending[gi] > 0)
        net_name = netlist.net_names[netlist.gates[stuck].output]
        raise NetlistError(
            f"combinational loop detected (involves net {net_name!r}); "
            f"{n_gates - len(order)} gates unplaceable"
        )
    return order, level


def max_logic_depth(netlist: Netlist) -> int:
    """Depth of the deepest combinational path (0 for gate-free designs)."""
    order, level = levelize(netlist)
    if not order:
        return 0
    return max(level) + 1
