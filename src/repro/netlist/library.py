"""Synthetic 180 nm-class standard-cell library.

This stands in for the Cadence GSCLib 180 nm library used by the paper.
Each :class:`CellSpec` carries the electrical data the reproduction needs:

* ``intrinsic_delay_ns`` — unloaded pin-to-output delay,
* ``drive_res_kohm`` — effective drive resistance; the loaded delay is
  ``intrinsic + drive_res_kohm * load_ff * 1e-3`` (kohm * fF = ps),
* ``input_cap_ff`` — capacitance of each input pin,
* ``output_cap_ff`` — parasitic drain capacitance at the output.

Magnitudes are calibrated to a generic 180 nm process (FO4 delay around
80–100 ps, pin caps of a few fF) so that aggregate power numbers land in
the tens-to-hundreds of milliwatts the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..errors import LibraryError
from .cells import CELL_ARITY, SEQUENTIAL_KINDS, is_combinational_kind


@dataclass(frozen=True)
class CellSpec:
    """Electrical and logical description of one library cell.

    Parameters
    ----------
    name:
        Library cell name (e.g. ``"NAND2X1"``).
    kind:
        Abstract logic kind (e.g. ``"NAND2"``) or a sequential kind
        (``"DFF"``, ``"SDFF"``, ``"DFFN"``, ``"SDFFN"``).
    intrinsic_delay_ns:
        Unloaded propagation delay.
    drive_res_kohm:
        Effective output drive resistance (delay slope vs load).
    input_cap_ff:
        Capacitance of each input pin.
    output_cap_ff:
        Parasitic capacitance at the cell output.
    leakage_mw:
        Static leakage (tiny at 180 nm; kept for completeness).
    """

    name: str
    kind: str
    intrinsic_delay_ns: float
    drive_res_kohm: float
    input_cap_ff: float
    output_cap_ff: float
    leakage_mw: float = 1e-6

    @property
    def n_inputs(self) -> int:
        """Number of logic input pins (data pins only for flops)."""
        if self.kind in SEQUENTIAL_KINDS:
            return 1
        return CELL_ARITY[self.kind]

    @property
    def is_sequential(self) -> bool:
        return self.kind in SEQUENTIAL_KINDS

    def loaded_delay_ns(self, load_ff: float) -> float:
        """Pin-to-output delay driving *load_ff* femtofarads."""
        return self.intrinsic_delay_ns + self.drive_res_kohm * load_ff * 1e-3


class Library:
    """A named collection of :class:`CellSpec` objects."""

    def __init__(self, name: str, cells: Iterable[CellSpec]):
        self.name = name
        self._cells: Dict[str, CellSpec] = {}
        for spec in cells:
            if spec.name in self._cells:
                raise LibraryError(f"duplicate cell {spec.name!r} in {name!r}")
            if not (spec.is_sequential or is_combinational_kind(spec.kind)):
                raise LibraryError(
                    f"cell {spec.name!r} has unknown kind {spec.kind!r}"
                )
            self._cells[spec.name] = spec

    def __contains__(self, cell_name: str) -> bool:
        return cell_name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self):
        return iter(self._cells.values())

    def cell(self, cell_name: str) -> CellSpec:
        """Look up a cell by name, raising :class:`LibraryError` if absent."""
        try:
            return self._cells[cell_name]
        except KeyError:
            raise LibraryError(
                f"cell {cell_name!r} not in library {self.name!r}"
            ) from None

    def cells_of_kind(self, kind: str) -> List[CellSpec]:
        """All cells implementing the given abstract kind."""
        return [c for c in self._cells.values() if c.kind == kind]


#: Delay calibration: scale factors applied to the raw cell rows so the
#: generated SOC's critical path sits near half of the 20 ns at-speed
#: period with typical loads, matching the paper's observation that the
#: average switching time frame window is close to half the clock cycle.
_INTRINSIC_SCALE = 1.5
_DRIVE_SCALE = 2.1


def _combinational_cells() -> List[CellSpec]:
    # (name, kind, intrinsic ns, drive kohm, in cap fF, out cap fF)
    rows = [
        ("INVX1", "INV", 0.020, 6.0, 2.6, 1.8),
        ("INVX4", "INV", 0.015, 1.8, 8.0, 4.5),
        ("BUFX2", "BUF", 0.055, 3.2, 3.0, 2.4),
        ("BUFX4", "BUF", 0.050, 1.8, 5.2, 3.6),
        ("CLKBUFX3", "CLKBUF", 0.060, 2.2, 4.6, 3.2),
        ("AND2X1", "AND2", 0.075, 4.6, 2.8, 2.6),
        ("AND3X1", "AND3", 0.090, 4.8, 2.8, 2.9),
        ("AND4X1", "AND4", 0.105, 5.0, 2.8, 3.2),
        ("NAND2X1", "NAND2", 0.040, 4.4, 2.9, 2.2),
        ("NAND3X1", "NAND3", 0.052, 4.8, 3.0, 2.5),
        ("NAND4X1", "NAND4", 0.066, 5.2, 3.1, 2.8),
        ("OR2X1", "OR2", 0.080, 4.8, 2.8, 2.6),
        ("OR3X1", "OR3", 0.098, 5.0, 2.8, 2.9),
        ("OR4X1", "OR4", 0.115, 5.2, 2.8, 3.2),
        ("NOR2X1", "NOR2", 0.046, 5.2, 2.9, 2.3),
        ("NOR3X1", "NOR3", 0.062, 5.8, 3.0, 2.6),
        ("NOR4X1", "NOR4", 0.080, 6.4, 3.1, 3.0),
        ("XOR2X1", "XOR2", 0.110, 5.4, 4.6, 3.4),
        ("XNOR2X1", "XNOR2", 0.112, 5.4, 4.6, 3.4),
        ("MUX2X1", "MUX2", 0.095, 5.0, 3.4, 3.2),
        ("AOI21X1", "AOI21", 0.058, 5.0, 3.0, 2.6),
        ("OAI21X1", "OAI21", 0.060, 5.0, 3.0, 2.6),
        ("TIELO", "TIE0", 0.0, 0.0, 0.0, 0.5),
        ("TIEHI", "TIE1", 0.0, 0.0, 0.0, 0.5),
    ]
    return [
        CellSpec(n, k, d * _INTRINSIC_SCALE, r * _DRIVE_SCALE, ci, co)
        for n, k, d, r, ci, co in rows
    ]


def _sequential_cells() -> List[CellSpec]:
    # Flops: intrinsic delay = clk->Q; input cap = D pin; the scan flop
    # carries extra mux capacitance on its data path.
    rows = [
        ("DFFX1", "DFF", 0.210, 4.0, 3.2, 3.8),
        ("DFFNX1", "DFFN", 0.215, 4.0, 3.2, 3.8),
        ("SDFFX1", "SDFF", 0.240, 4.0, 4.4, 4.0),
        ("SDFFNX1", "SDFFN", 0.245, 4.0, 4.4, 4.0),
    ]
    return [
        CellSpec(n, k, d * _INTRINSIC_SCALE, r * _DRIVE_SCALE, ci, co)
        for n, k, d, r, ci, co in rows
    ]


_DEFAULT: Library | None = None


def default_library() -> Library:
    """The synthetic 180 nm library used throughout the reproduction.

    The instance is cached; callers must treat it as immutable.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Library(
            "gsc180_synth", _combinational_cells() + _sequential_cells()
        )
    return _DEFAULT


#: Preferred concrete cell for each abstract kind (used by generators).
DEFAULT_CELL_FOR_KIND: Dict[str, str] = {
    "INV": "INVX1",
    "BUF": "BUFX2",
    "CLKBUF": "CLKBUFX3",
    "AND2": "AND2X1",
    "AND3": "AND3X1",
    "AND4": "AND4X1",
    "NAND2": "NAND2X1",
    "NAND3": "NAND3X1",
    "NAND4": "NAND4X1",
    "OR2": "OR2X1",
    "OR3": "OR3X1",
    "OR4": "OR4X1",
    "NOR2": "NOR2X1",
    "NOR3": "NOR3X1",
    "NOR4": "NOR4X1",
    "XOR2": "XOR2X1",
    "XNOR2": "XNOR2X1",
    "MUX2": "MUX2X1",
    "AOI21": "AOI21X1",
    "OAI21": "OAI21X1",
    "TIE0": "TIELO",
    "TIE1": "TIEHI",
    "DFF": "DFFX1",
    "DFFN": "DFFNX1",
    "SDFF": "SDFFX1",
    "SDFFN": "SDFFNX1",
}
