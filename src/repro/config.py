"""Global electrical and test constants for the reproduction.

The values below mirror the operating point of the paper's case study:
a 180 nm standard-cell SOC timing-closed at 1.8 V / 25 C, tested with a
20 ns launch-to-capture cycle on the dominant clock domain and a 10 MHz
scan shift clock.

Units used consistently throughout the library:

==============  =========================
quantity        unit
==============  =========================
time            nanoseconds (ns)
capacitance     femtofarads (fF)
voltage         volts (V)
current         milliamperes (mA)
resistance      ohms
power           milliwatts (mW)
energy          femtojoules (fJ) internally; reported in mW over windows
distance        micrometres (um)
==============  =========================

With these units, ``C[fF] * V[V]^2`` is an energy in femtojoules and
``fJ / ns`` is a power in microwatts; helpers in :mod:`repro.power.energy`
convert to milliwatts for reporting, matching the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigError

#: Nominal supply voltage of the 180 nm library (V).
VDD_NOMINAL = 1.8

#: Worst-case IR-drop "red" threshold used in the paper's Figure 3:
#: regions dropping more than 10 % of VDD are flagged.
IR_DROP_RED_FRACTION = 0.10

#: Non-linear delay-scaling factor from the vendor library (paper
#: Section 3.2): a 0.1 V drop slows a cell by 0.9 * 0.1 = 9 %.
K_VOLT = 0.9

#: At-speed launch-to-capture period of the dominant clock domain (ns).
ATSPEED_PERIOD_NS = 20.0

#: Scan shift period (ns) — 10 MHz, deliberately slow (shift IR-drop is
#: out of the paper's scope, as is ours).
SHIFT_PERIOD_NS = 100.0

#: Toggle probability assumed by the vectorless statistical analysis.
#: The paper uses a pessimistic 30 % (vs the customary 20 %) because test
#: switching exceeds functional switching.
STATISTICAL_TOGGLE_RATE = 0.30

#: Number of VDD pads and of VSS pads around the chip periphery.
SUPPLY_PAD_COUNT = 37


def joules_to_milliwatts(energy_fj: float, window_ns: float) -> float:
    """Convert an energy in femtojoules over a window in ns to milliwatts.

    ``1 fJ / 1 ns = 1 uW = 1e-3 mW``.
    """
    if window_ns <= 0.0:
        raise ConfigError(f"window must be positive, got {window_ns} ns")
    return energy_fj / window_ns * 1e-3


@dataclass(frozen=True)
class ElectricalEnv:
    """Operating point used by power and IR-drop analyses.

    Parameters
    ----------
    vdd:
        Supply voltage in volts.
    temperature_c:
        Junction temperature in Celsius (informational; the synthetic
        library is characterised at 25 C only).
    k_volt:
        Delay sensitivity to supply droop (fractional delay increase per
        volt of drop).
    """

    vdd: float = VDD_NOMINAL
    temperature_c: float = 25.0
    k_volt: float = K_VOLT

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ConfigError(f"vdd must be positive, got {self.vdd}")
        if self.k_volt < 0:
            raise ConfigError(f"k_volt must be >= 0, got {self.k_volt}")

    def scaled_delay(self, delay_ns: float, drop_v: float) -> float:
        """Apply the paper's delay-degradation formula.

        ``ScaledCellDelay = Delay * (1 + k_volt * dV)`` where ``dV`` is the
        voltage drop (in volts) seen by the cell.  Negative drops (local
        overshoot) are clamped to zero: the model only degrades.
        """
        drop = max(0.0, drop_v)
        return delay_ns * (1.0 + self.k_volt * drop)

    @property
    def red_drop_v(self) -> float:
        """Absolute drop (V) above which a region is 'red' in IR maps."""
        return IR_DROP_RED_FRACTION * self.vdd
