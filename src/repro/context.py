"""One session object for the run-wide configuration knobs.

Four ambient scopes accumulated across the perf and obs subsystems —
:func:`repro.obs.use_telemetry`,
:func:`repro.perf.resilient.execution_policy`,
:func:`repro.perf.dispatch.dispatch_policy` and
:func:`repro.perf.kernel_cache.use_kernel_cache` — and every new entry
point had to thread all four through by hand.  :class:`RunContext`
composes them into one immutable session object, and
:func:`use_run_context` scopes them together::

    ctx = RunContext(
        telemetry=Telemetry(tracing=True),
        execution=RetryPolicy(max_retries=1),
        dispatch=DispatchPolicy(mode="pool"),
        kernel_cache=KernelCache(tmp_dir),
    )
    with use_run_context(ctx):
        run_noise_tolerant_flow(design)        # all four apply
    run_noise_tolerant_flow(design, context=ctx)  # same thing

Every field defaults to "inherit the ambient value", so partial
contexts compose: ``RunContext(dispatch=...)`` inside a
``use_telemetry(...)`` block keeps the outer telemetry.  For the
kernel cache — whose ambient value is itself optional — the sentinel
:data:`INHERIT_CACHE` distinguishes "inherit" from ``None`` ("disable
caching for this scope").

The individual context managers remain fully supported; a
:class:`RunContext` is exactly equivalent to nesting them, which is
what :func:`use_run_context` does.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Optional, Union

from .obs import AnyTelemetry, current_telemetry, use_telemetry
from .perf.dispatch import DispatchPolicy, current_dispatch, dispatch_policy
from .perf.kernel_cache import (
    KernelCache,
    current_kernel_cache,
    use_kernel_cache,
)
from .perf.resilient import RetryPolicy, default_policy, execution_policy


class _InheritCache:
    """Sentinel type: leave the ambient kernel cache alone."""

    def __repr__(self) -> str:
        return "INHERIT_CACHE"


#: Default for :attr:`RunContext.kernel_cache`: inherit the ambient
#: cache.  Pass ``None`` to disable caching inside the scope.
INHERIT_CACHE = _InheritCache()


@dataclass(frozen=True)
class RunContext:
    """Immutable bundle of the session-wide configuration knobs.

    ``None`` (or :data:`INHERIT_CACHE` for the cache) means "inherit
    whatever is ambient", so contexts can be partial and nest.
    """

    #: Telemetry facade scoped over the run (``None`` = inherit the
    #: ambient facade; pass ``repro.obs.NULL_TELEMETRY`` to force off).
    telemetry: Optional[AnyTelemetry] = None
    #: Retry/timeout/crash-isolation policy for resilient execution.
    execution: Optional[RetryPolicy] = None
    #: Serial/batch/pool dispatch policy for ``n_workers="auto"``.
    dispatch: Optional[DispatchPolicy] = None
    #: Compiled-kernel cache (``None`` disables caching in the scope).
    kernel_cache: Union[KernelCache, None, _InheritCache] = INHERIT_CACHE

    def with_telemetry(
        self, telemetry: Optional[AnyTelemetry]
    ) -> "RunContext":
        """A copy with *telemetry* (the deprecation-shim helper)."""
        return replace(self, telemetry=telemetry)

    def overriding(self, other: "RunContext") -> "RunContext":
        """Compose two contexts: *other*'s explicit fields win.

        Fields *other* leaves as "inherit" keep this context's value,
        so a caller can layer a partial override (say, the service
        store's retry policy) over a snapshot of the ambient session
        without losing the rest::

            ctx = current_run_context().overriding(
                RunContext(execution=store_policy)
            )
        """
        return RunContext(
            telemetry=(
                other.telemetry
                if other.telemetry is not None else self.telemetry
            ),
            execution=(
                other.execution
                if other.execution is not None else self.execution
            ),
            dispatch=(
                other.dispatch
                if other.dispatch is not None else self.dispatch
            ),
            kernel_cache=(
                self.kernel_cache
                if isinstance(other.kernel_cache, _InheritCache)
                else other.kernel_cache
            ),
        )

    def is_default(self) -> bool:
        """True when every field inherits the ambient value."""
        return (
            self.telemetry is None
            and self.execution is None
            and self.dispatch is None
            and isinstance(self.kernel_cache, _InheritCache)
        )


def current_run_context() -> RunContext:
    """Snapshot of the ambient configuration as a :class:`RunContext`.

    Re-scoping the snapshot reproduces the current environment — handy
    for shipping the session configuration across an API boundary.
    """
    return RunContext(
        telemetry=current_telemetry(),
        execution=default_policy(),
        dispatch=current_dispatch(),
        kernel_cache=current_kernel_cache(),
    )


@contextmanager
def use_run_context(
    context: Optional[RunContext],
) -> Iterator[RunContext]:
    """Scope every non-inherit field of *context* ambiently.

    Exactly equivalent to nesting the individual context managers;
    ``None`` (or an all-default context) scopes nothing and is free.
    """
    ctx = context if context is not None else RunContext()
    with ExitStack() as stack:
        if ctx.telemetry is not None:
            stack.enter_context(use_telemetry(ctx.telemetry))
        if ctx.execution is not None:
            stack.enter_context(execution_policy(ctx.execution))
        if ctx.dispatch is not None:
            stack.enter_context(dispatch_policy(ctx.dispatch))
        if not isinstance(ctx.kernel_cache, _InheritCache):
            stack.enter_context(use_kernel_cache(ctx.kernel_cache))
        yield ctx
