"""Switching-event traces and VCD export.

The paper's first SCAP attempt captured switching activity into VCD
files before the PLI made that unnecessary ("this technique is
sufficient only to analyze a very small number of patterns due to the
extremely large size of VCD files").  We keep the VCD path available:
:class:`SwitchingTrace` wraps a recorded event trace with windowed
statistics, and :func:`write_vcd` emits a standard value-change-dump
for waveform viewers — useful for debugging a handful of patterns,
exactly as the paper used it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from ..errors import SimulationError
from ..netlist.netlist import Netlist
from .event import TimingResult


class SwitchingTrace:
    """A (time, net, value) event trace with query helpers."""

    def __init__(self, netlist: Netlist, result: TimingResult):
        if result.trace is None:
            raise SimulationError(
                "timing result has no trace; simulate with "
                "record_trace=True"
            )
        self.netlist = netlist
        self.events: List[Tuple[float, int, int]] = list(result.trace)
        self.capture_time_ns = result.capture_time_ns

    def __len__(self) -> int:
        return len(self.events)

    def transitions_in_window(self, t0_ns: float, t1_ns: float) -> int:
        """Number of events with t0 <= t < t1."""
        return sum(1 for t, _n, _v in self.events if t0_ns <= t < t1_ns)

    def toggles_by_block(self) -> Dict[str, int]:
        """Event counts attributed to the driver instance's block."""
        block_of_net: Dict[int, Optional[str]] = {}
        for g in self.netlist.gates:
            block_of_net[g.output] = g.block
        for f in self.netlist.flops:
            block_of_net[f.q] = f.block
        counts: Dict[str, int] = {}
        for _t, net, _v in self.events:
            block = block_of_net.get(net)
            if block is not None:
                counts[block] = counts.get(block, 0) + 1
        return counts

    def busiest_nets(self, k: int = 10) -> List[Tuple[str, int]]:
        """The k most-toggling nets (name, toggle count)."""
        counts: Dict[int, int] = {}
        for _t, net, _v in self.events:
            counts[net] = counts.get(net, 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: -kv[1])[:k]
        return [(self.netlist.net_names[n], c) for n, c in ranked]


def _vcd_id(index: int) -> str:
    """Short printable VCD identifier for a net index."""
    chars = "".join(chr(c) for c in range(33, 127))
    out = ""
    index += 1
    while index:
        index, rem = divmod(index, len(chars))
        out += chars[rem - 1] if rem else chars[-1]
    return out


def write_vcd(
    trace: SwitchingTrace,
    stream: TextIO,
    initial_values: Optional[Sequence[int]] = None,
    timescale_ps: int = 10,
) -> None:
    """Write a trace as a standard VCD file.

    Only nets that appear in the trace are declared (full-design dumps
    are exactly the file-size problem the paper's PLI avoided).
    """
    netlist = trace.netlist
    nets = sorted({net for _t, net, _v in trace.events})
    ids = {net: _vcd_id(i) for i, net in enumerate(nets)}

    stream.write("$date repro switching trace $end\n")
    stream.write(f"$timescale {timescale_ps} ps $end\n")
    stream.write(f"$scope module {netlist.name} $end\n")
    for net in nets:
        name = netlist.net_names[net].replace(" ", "_")
        stream.write(f"$var wire 1 {ids[net]} {name} $end\n")
    stream.write("$upscope $end\n$enddefinitions $end\n")

    stream.write("$dumpvars\n")
    for net in nets:
        init = 0
        if initial_values is not None:
            init = initial_values[net] & 1
        stream.write(f"{init}{ids[net]}\n")
    stream.write("$end\n")

    ticks_per_ns = 1000.0 / timescale_ps
    last_tick = None
    for t, net, val in sorted(trace.events):
        tick = int(round(t * ticks_per_ns))
        if tick != last_tick:
            stream.write(f"#{tick}\n")
            last_tick = tick
        stream.write(f"{val & 1}{ids[net]}\n")
    end_tick = int(round(trace.capture_time_ns * ticks_per_ns))
    stream.write(f"#{end_tick}\n")
