"""Endpoint (scan-flop) path-delay measurement.

Paper Figure 7 semantics: "we measure the path delay observed at each
endpoint based on the reference clock signal reaching the respective
endpoint".  The delay of endpoint *f* is the last data arrival at its D
pin minus the clock arrival at *f* itself, so if IR-drop slows the
capture flop's clock path relative to the launch flop's, the *measured*
path delay decreases — the paper's "Region 2" effect.

Non-active endpoints (no transition reached their D pin) report 0.0,
matching the paper's plotting convention.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Optional

from ..soc.clocks import ClockBuffer, ClockTree
from ..netlist.netlist import Netlist
from .event import TimingResult

DelayScaleFn = Callable[[ClockBuffer, float], float]


def endpoint_delays(
    netlist: Netlist,
    tree: ClockTree,
    result: TimingResult,
    flops: Optional[Iterable[int]] = None,
    clock_delay_scale: Optional[DelayScaleFn] = None,
) -> Dict[int, float]:
    """Per-endpoint path delay for one simulated pattern.

    Parameters
    ----------
    netlist:
        The design.
    tree:
        Clock tree of the captured domain (provides per-flop clock
        arrival, optionally scaled by IR-drop).
    result:
        Timing simulation result holding per-net last arrivals.
    flops:
        Endpoints to measure; defaults to every flop in the tree.
    clock_delay_scale:
        Optional per-buffer delay scaling (IR-drop-aware capture clock).
    """
    targets = list(flops) if flops is not None else sorted(tree.leaf_of_flop)
    out: Dict[int, float] = {}
    for fi in targets:
        d_net = netlist.flops[fi].d
        arrival = float(result.last_arrival_ns[d_net])
        if math.isnan(arrival):
            out[fi] = 0.0
            continue
        clock_arrival = tree.insertion_delay_ns(
            fi, delay_scale=clock_delay_scale
        )
        out[fi] = arrival - clock_arrival
    return out


def active_endpoints(delays: Dict[int, float]) -> Dict[int, float]:
    """Filter out non-active endpoints (zero delay)."""
    return {fi: d for fi, d in delays.items() if d != 0.0}
