"""Simulation engines.

* :mod:`~repro.sim.logic` — bit-parallel zero-delay logic simulation
  (the workhorse behind ATPG, fault simulation and launch-state
  computation),
* :mod:`~repro.sim.delays` — per-instance loaded delays (SDF substitute),
* :mod:`~repro.sim.event` — event-driven gate-level timing simulation of
  the launch-to-capture cycle (the VCS substitute),
* :mod:`~repro.sim.fasttiming` — levelised single-transition timing
  approximation for bulk pattern screening,
* :mod:`~repro.sim.endpoints` — endpoint path-delay measurement against
  each flop's own clock arrival (paper Figure 7 semantics).
"""

from .logic import (
    LogicSim,
    launch_capture_with_state,
    loc_launch_capture,
    pack_matrix,
)
from .delays import DelayModel
from .event import EventTimingSim, TimingResult
from .fasttiming import FastTimingSim
from .endpoints import endpoint_delays
from .sta import (
    SstaReport,
    StaticTimingAnalyzer,
    StaReport,
    analyze_statistical,
    derates_from_ir,
)
from .waveform import SwitchingTrace, write_vcd

__all__ = [
    "DelayModel",
    "EventTimingSim",
    "FastTimingSim",
    "LogicSim",
    "SstaReport",
    "StaReport",
    "StaticTimingAnalyzer",
    "analyze_statistical",
    "SwitchingTrace",
    "TimingResult",
    "derates_from_ir",
    "write_vcd",
    "endpoint_delays",
    "launch_capture_with_state",
    "loc_launch_capture",
    "pack_matrix",
]
