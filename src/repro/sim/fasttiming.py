"""Levelised single-transition timing approximation.

A much faster alternative to the event-driven engine for bulk pattern
screening: it assumes every net switches at most once per cycle (no
hazards), which holds exactly on fanout-reconvergence-free logic and is
a mild underestimate elsewhere.  Arrival times propagate level by level:
a toggling gate output fires at ``max(arrival of its toggling inputs) +
gate delay``.

The engine intentionally produces the same :class:`TimingResult` shape
as :class:`repro.sim.event.EventTimingSim`, so power/IR layers accept
either; benchmarks compare the two (speed ablation) and property tests
check they agree on hazard-free circuits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import VDD_NOMINAL
from ..errors import SimulationError
from ..netlist.levelize import levelize
from ..netlist.netlist import Netlist
from ..netlist.parasitics import ParasiticModel
from .delays import DelayModel
from .event import TimingResult


class FastTimingSim:
    """Reusable levelised timing engine bound to one netlist."""

    def __init__(
        self,
        netlist: Netlist,
        delays: DelayModel,
        parasitics: Optional[ParasiticModel] = None,
        vdd: float = VDD_NOMINAL,
    ):
        self.netlist = netlist
        self.delays = delays
        self.parasitics = (
            parasitics if parasitics is not None else delays.parasitics
        )
        self.vdd = vdd
        netlist.freeze()
        self._order, _ = levelize(netlist)
        self._block_of_net: List[Optional[str]] = [None] * netlist.n_nets
        for g in netlist.gates:
            self._block_of_net[g.output] = g.block
        for f in netlist.flops:
            self._block_of_net[f.q] = f.block
        self._energy_of_net = self.parasitics.net_cap_ff * vdd * vdd

    def simulate(
        self,
        frame1_values: Sequence[int],
        frame2_values: Sequence[int],
        launch_state: Dict[int, int],
        launch_time_of_flop: Dict[int, float],
        capture_time_ns: float,
    ) -> TimingResult:
        """Approximate the launch-to-capture cycle from two settled frames.

        Parameters
        ----------
        frame1_values / frame2_values:
            Zero-delay settled net values before and after the launch
            edge (single pattern, 0/1 per net).
        launch_state:
            Per-flop state after the launch edge (identifies which flops
            actually launch).
        launch_time_of_flop:
            Clock arrival (insertion delay) per launching flop.
        capture_time_ns:
            Capture-edge time, copied into the result for downstream use.
        """
        netlist = self.netlist
        n_nets = netlist.n_nets
        if len(frame1_values) != n_nets or len(frame2_values) != n_nets:
            raise SimulationError("frame value arrays must cover all nets")

        arrival = np.full(n_nets, np.nan)
        toggles = np.zeros(n_nets, dtype=np.int32)
        energy_total = 0.0
        energy_by_block: Dict[str, float] = {}

        # Flop launch transitions seed the arrival front.
        ck2q = self.delays.flop_ck2q_ns
        for fi, new_q in launch_state.items():
            q_net = netlist.flops[fi].q
            if (frame1_values[q_net] ^ new_q) & 1:
                arrival[q_net] = launch_time_of_flop[fi] + float(ck2q[fi])

        f1 = frame1_values
        f2 = frame2_values
        energy_of_net = self._energy_of_net
        block_of_net = self._block_of_net
        gate_delay = self.delays.gate_delay_ns

        def book(net: int) -> None:
            nonlocal energy_total
            toggles[net] = 1
            energy = energy_of_net[net]
            energy_total += energy
            block = block_of_net[net]
            if block is not None:
                energy_by_block[block] = (
                    energy_by_block.get(block, 0.0) + energy
                )

        for net in np.nonzero(~np.isnan(arrival))[0]:
            book(int(net))

        for gi in self._order:
            gate = netlist.gates[gi]
            out = gate.output
            if (f1[out] ^ f2[out]) & 1 == 0:
                continue
            in_arr = [
                arrival[p]
                for p in gate.inputs
                if (f1[p] ^ f2[p]) & 1 and not np.isnan(arrival[p])
            ]
            if not in_arr:
                # Inputs settle identically yet output differs: can only
                # happen if a source net changed without a recorded
                # launch (e.g. non-pulsed-domain interaction); skip.
                continue
            arrival[out] = max(in_arr) + gate_delay[gi]
            book(out)

        finite = arrival[~np.isnan(arrival)]
        stw = float(finite.max()) if finite.size else 0.0
        return TimingResult(
            stw_ns=stw,
            capture_time_ns=capture_time_ns,
            n_transitions=int(toggles.sum()),
            toggles=toggles,
            last_arrival_ns=arrival,
            energy_fj_total=energy_total,
            energy_fj_by_block=energy_by_block,
            truncated=False,
            trace=None,
        )
