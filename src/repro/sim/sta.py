"""Static timing analysis with optional IR-drop derating.

The paper contrasts its per-pattern dynamic analysis with the signoff
practice of "simulating patterns at the best and worst-case corners",
which is "either over optimistic or pessimistic" because one corner is
applied to the whole die.  This module provides that corner-style STA —
levelised arrival/required/slack over the launch-to-capture cycle —
plus *per-instance* derating from a dynamic IR-drop result, so the
corner analysis and the paper's spatially-aware scaling can be compared
head to head.

Arrival times start at each launching flop's clock arrival plus
clock-to-Q; an endpoint's required time is the capture edge at its own
clock arrival minus setup.  Negative slack means the path misses the
cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ElectricalEnv
from ..errors import SimulationError
from ..netlist.levelize import levelize
from ..netlist.netlist import Netlist
from ..soc.clocks import ClockBuffer, ClockTree
from .delays import DelayModel

#: Setup time assumed for every flop (ns) — a single number suffices for
#: the synthetic library.
SETUP_NS = 0.12


@dataclass(frozen=True)
class TimingPathPoint:
    """One hop of a reported timing path."""

    net: int
    net_name: str
    arrival_ns: float
    through: str  # instance name of the driver


@dataclass
class EndpointTiming:
    """Arrival / required / slack at one capture flop."""

    flop: int
    flop_name: str
    arrival_ns: float
    required_ns: float

    @property
    def slack_ns(self) -> float:
        return self.required_ns - self.arrival_ns


@dataclass
class StaReport:
    """Full-design STA result for one clock domain."""

    domain: str
    period_ns: float
    endpoints: List[EndpointTiming]

    @property
    def worst_slack_ns(self) -> float:
        if not self.endpoints:
            return float("inf")
        return min(e.slack_ns for e in self.endpoints)

    def worst_endpoints(self, k: int = 5) -> List[EndpointTiming]:
        return sorted(self.endpoints, key=lambda e: e.slack_ns)[:k]

    def failing_endpoints(self) -> List[EndpointTiming]:
        return [e for e in self.endpoints if e.slack_ns < 0]


class StaticTimingAnalyzer:
    """Levelised worst-case arrival analysis for one clock domain."""

    def __init__(
        self,
        netlist: Netlist,
        delays: DelayModel,
        tree: ClockTree,
        period_ns: float,
        domain: str,
        setup_ns: float = SETUP_NS,
    ):
        if period_ns <= 0:
            raise SimulationError("period must be positive")
        self.netlist = netlist
        self.delays = delays
        self.tree = tree
        self.period_ns = period_ns
        self.domain = domain
        self.setup_ns = setup_ns
        netlist.freeze()
        self._order, _ = levelize(netlist)
        self._launch_flops = [
            fi
            for fi, f in enumerate(netlist.flops)
            if f.clock_domain == domain and f.edge == "pos"
        ]
        if not self._launch_flops:
            raise SimulationError(f"no flops in domain {domain!r}")

    # ------------------------------------------------------------------
    def analyze(
        self,
        gate_derate: Optional[np.ndarray] = None,
        flop_derate: Optional[np.ndarray] = None,
        clock_delay_scale: Optional[
            Callable[[ClockBuffer, float], float]
        ] = None,
        launch_flops: Optional[Sequence[int]] = None,
    ) -> StaReport:
        """Run STA; derates multiply the corresponding nominal delays.

        ``gate_derate[gi]`` / ``flop_derate[fi]`` default to 1.0
        everywhere; ``clock_delay_scale`` rescales clock-tree buffer
        delays (late capture clocks relax required times, late launch
        clocks push arrivals — both are modelled, as in the paper's
        Region-2 discussion).  ``launch_flops`` restricts which launch
        points seed arrivals (the per-pattern tightening of the
        noise-aware bound: only flops that actually toggle launch);
        endpoints are still every capture flop of the domain, and cones
        the seeds cannot reach simply drop out of the report.
        """
        netlist = self.netlist
        n_gates = netlist.n_gates
        if gate_derate is None:
            gate_derate = np.ones(n_gates)
        if flop_derate is None:
            flop_derate = np.ones(netlist.n_flops)
        if len(gate_derate) != n_gates:
            raise SimulationError("gate_derate length mismatch")
        if len(flop_derate) != netlist.n_flops:
            raise SimulationError("flop_derate length mismatch")
        if launch_flops is None:
            seeds = list(self._launch_flops)
        else:
            seeds = list(launch_flops)
            allowed = set(self._launch_flops)
            bad = [fi for fi in seeds if fi not in allowed]
            if bad:
                raise SimulationError(
                    f"launch_flops {sorted(bad)} are not launch-capable "
                    f"flops of domain {self.domain!r}"
                )

        neg_inf = float("-inf")
        arrival = np.full(netlist.n_nets, neg_inf)
        predecessor: Dict[int, Tuple[int, str]] = {}

        insertion: Dict[int, float] = {}
        for fi in self._launch_flops:
            insertion[fi] = self.tree.insertion_delay_ns(
                fi, delay_scale=clock_delay_scale
            )
        for fi in seeds:
            q = netlist.flops[fi].q
            t = (
                insertion[fi]
                + self.delays.flop_ck2q_ns[fi] * flop_derate[fi]
            )
            if t > arrival[q]:
                arrival[q] = t

        gate_delay = self.delays.gate_delay_ns
        for gi in self._order:
            gate = netlist.gates[gi]
            worst_in = neg_inf
            worst_net = -1
            for p in gate.inputs:
                if arrival[p] > worst_in:
                    worst_in = arrival[p]
                    worst_net = p
            if worst_in == neg_inf:
                continue  # cone not reached from this domain
            t = worst_in + gate_delay[gi] * gate_derate[gi]
            out = gate.output
            if t > arrival[out]:
                arrival[out] = t
                predecessor[out] = (worst_net, gate.name)

        endpoints: List[EndpointTiming] = []
        for fi in self._launch_flops:
            d_net = netlist.flops[fi].d
            arr = arrival[d_net]
            if arr == neg_inf:
                continue
            required = self.period_ns + insertion[fi] - self.setup_ns
            endpoints.append(
                EndpointTiming(
                    flop=fi,
                    flop_name=netlist.flops[fi].name,
                    arrival_ns=float(arr),
                    required_ns=float(required),
                )
            )

        self._arrival = arrival
        self._predecessor = predecessor
        return StaReport(self.domain, self.period_ns, endpoints)

    # ------------------------------------------------------------------
    def trace_path(self, endpoint: EndpointTiming) -> List[TimingPathPoint]:
        """Walk the worst path into an endpoint (run :meth:`analyze`
        first).  Returned root-first."""
        netlist = self.netlist
        points: List[TimingPathPoint] = []
        net = netlist.flops[endpoint.flop].d
        guard = netlist.n_nets + 1
        while guard:
            guard -= 1
            drv = netlist.driver_of(net)
            through = "<source>"
            if drv is not None and drv[0] == "gate":
                through = netlist.gates[drv[1]].name
            elif drv is not None and drv[0] == "flop":
                through = netlist.flops[drv[1]].name
            points.append(
                TimingPathPoint(
                    net=net,
                    net_name=netlist.net_names[net],
                    arrival_ns=float(self._arrival[net]),
                    through=through,
                )
            )
            nxt = self._predecessor.get(net)
            if nxt is None:
                break
            net = nxt[0]
        points.reverse()
        return points


@dataclass
class StatisticalEndpoint:
    """SSTA-lite result at one endpoint: Gaussian arrival model."""

    flop: int
    flop_name: str
    mean_arrival_ns: float
    std_arrival_ns: float
    required_ns: float

    @property
    def mean_slack_ns(self) -> float:
        return self.required_ns - self.mean_arrival_ns

    def timing_yield(self) -> float:
        """P(arrival <= required) under the Gaussian model."""
        if self.std_arrival_ns <= 0:
            return 1.0 if self.mean_slack_ns >= 0 else 0.0
        from math import erf, sqrt

        z = self.mean_slack_ns / self.std_arrival_ns
        return 0.5 * (1.0 + erf(z / sqrt(2.0)))


@dataclass
class SstaReport:
    """Statistical STA over one domain."""

    domain: str
    period_ns: float
    sigma_fraction: float
    endpoints: List[StatisticalEndpoint]

    def worst_yield_endpoint(self) -> Optional[StatisticalEndpoint]:
        if not self.endpoints:
            return None
        return min(self.endpoints, key=lambda e: e.timing_yield())

    def chip_timing_yield(self) -> float:
        """Independent-endpoint approximation of whole-chip yield."""
        out = 1.0
        for e in self.endpoints:
            out *= e.timing_yield()
        return out


def analyze_statistical(
    sta: "StaticTimingAnalyzer",
    sigma_fraction: float = 0.05,
) -> SstaReport:
    """SSTA-lite: per-gate independent Gaussian delay variation.

    Every gate delay is ``N(d, (sigma_fraction * d)^2)``; along each
    endpoint's *worst* structural path, means add and variances add
    (the max-of-Gaussians correction is ignored — a first-order model
    that is exact on path-dominated designs and mildly optimistic
    elsewhere).  Clock arrivals are treated as deterministic.
    """
    if sigma_fraction < 0:
        raise SimulationError("sigma_fraction must be >= 0")
    netlist = sta.netlist
    neg_inf = float("-inf")
    mean = np.full(netlist.n_nets, neg_inf)
    var = np.zeros(netlist.n_nets)

    insertion: Dict[int, float] = {}
    for fi in sta._launch_flops:
        insertion[fi] = sta.tree.insertion_delay_ns(fi)
        q = netlist.flops[fi].q
        d = sta.delays.flop_ck2q_ns[fi]
        t = insertion[fi] + d
        if t > mean[q]:
            mean[q] = t
            var[q] = (sigma_fraction * d) ** 2

    gate_delay = sta.delays.gate_delay_ns
    for gi in sta._order:
        gate = netlist.gates[gi]
        worst_in = neg_inf
        worst_net = -1
        for p in gate.inputs:
            if mean[p] > worst_in:
                worst_in = mean[p]
                worst_net = p
        if worst_in == neg_inf:
            continue
        d = float(gate_delay[gi])
        out = gate.output
        t = worst_in + d
        if t > mean[out]:
            mean[out] = t
            var[out] = var[worst_net] + (sigma_fraction * d) ** 2

    endpoints: List[StatisticalEndpoint] = []
    for fi in sta._launch_flops:
        d_net = netlist.flops[fi].d
        if mean[d_net] == neg_inf:
            continue
        required = sta.period_ns + insertion[fi] - sta.setup_ns
        endpoints.append(
            StatisticalEndpoint(
                flop=fi,
                flop_name=netlist.flops[fi].name,
                mean_arrival_ns=float(mean[d_net]),
                std_arrival_ns=float(np.sqrt(var[d_net])),
                required_ns=float(required),
            )
        )
    return SstaReport(sta.domain, sta.period_ns, sigma_fraction,
                      endpoints)


def derates_from_ir(
    ir,
    env: Optional[ElectricalEnv] = None,
    *,
    netlist: Optional[Netlist] = None,
    only: Optional[Sequence[str]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-instance derate factors from a dynamic IR-drop result.

    ``factor = 1 + k_volt * droop`` — the paper's formula expressed as a
    multiplicative derate for STA.

    ``only`` restricts derating to the named gate/flop instances
    (everything else keeps factor 1.0) — useful for what-if analysis of
    a single block's droop.  Restricting requires *netlist* for the
    name lookup; an empty or unknown selection is a caller bug and
    fails with a one-line error instead of silently derating nothing.
    """
    if env is None:
        env = ElectricalEnv()
    gate_droop = np.asarray(ir.gate_droop_v, dtype=float)
    flop_droop = np.asarray(ir.flop_droop_v, dtype=float)
    if only is not None:
        if netlist is None:
            raise SimulationError(
                "derates_from_ir: only= needs netlist= to resolve "
                "instance names"
            )
        names = list(only)
        if not names:
            raise SimulationError(
                "derates_from_ir: empty instance restriction — pass "
                "only=None to derate every instance"
            )
        if len(gate_droop) != netlist.n_gates:
            raise SimulationError(
                f"derates_from_ir: IR result has {len(gate_droop)} gate "
                f"droops but the netlist has {netlist.n_gates} gates"
            )
        gate_idx = {g.name: gi for gi, g in enumerate(netlist.gates)}
        flop_idx = {f.name: fi for fi, f in enumerate(netlist.flops)}
        gate_mask = np.zeros(netlist.n_gates, dtype=bool)
        flop_mask = np.zeros(netlist.n_flops, dtype=bool)
        unknown = []
        for name in names:
            if name in gate_idx:
                gate_mask[gate_idx[name]] = True
            elif name in flop_idx:
                flop_mask[flop_idx[name]] = True
            else:
                unknown.append(name)
        if unknown:
            raise SimulationError(
                f"derates_from_ir: unknown instance name(s) "
                f"{sorted(unknown)}"
            )
        gate_droop = np.where(gate_mask, gate_droop, 0.0)
        flop_droop = np.where(flop_mask, flop_droop, 0.0)
    gate = 1.0 + env.k_volt * np.clip(gate_droop, 0.0, None)
    flop = 1.0 + env.k_volt * np.clip(flop_droop, 0.0, None)
    return gate, flop
