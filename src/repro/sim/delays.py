"""Per-instance loaded delays — the SDF back-annotation substitute.

Each gate's pin-to-output delay is its library cell's loaded delay at
the extracted capacitance of its output net, plus a per-fanout wire
delay adder standing in for RC interconnect.  Flop clock-to-Q delays are
computed the same way.  The model supports voltage-aware scaling via the
paper's formula ``ScaledCellDelay = Delay * (1 + k_volt * dV)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ElectricalEnv
from ..errors import SimulationError
from ..netlist.netlist import Netlist
from ..netlist.parasitics import (
    ParasiticModel,
    WIRE_DELAY_PER_FANOUT_NS,
    extract_net_caps,
)


class DelayModel:
    """Loaded delay per gate and per flop for one netlist.

    Attributes
    ----------
    gate_delay_ns:
        ``gate_delay_ns[gi]`` — input-pin-to-output delay of gate *gi*.
    flop_ck2q_ns:
        ``flop_ck2q_ns[fi]`` — clock-to-Q delay of flop *fi*.
    """

    def __init__(
        self,
        netlist: Netlist,
        parasitics: Optional[ParasiticModel] = None,
        wire_delay_per_fanout_ns: float = WIRE_DELAY_PER_FANOUT_NS,
    ):
        self.netlist = netlist
        self.parasitics = (
            parasitics if parasitics is not None else extract_net_caps(netlist)
        )
        self.wire_delay_per_fanout_ns = wire_delay_per_fanout_ns
        lib = netlist.library
        netlist.freeze()

        self.gate_delay_ns = np.zeros(netlist.n_gates, dtype=float)
        for gi, gate in enumerate(netlist.gates):
            spec = lib.cell(gate.cell)
            load = self.parasitics.cap_of(gate.output)
            fanout = len(netlist.gate_fanouts_of(gate.output)) + len(
                netlist.flop_d_loads_of(gate.output)
            )
            self.gate_delay_ns[gi] = (
                spec.loaded_delay_ns(load)
                + wire_delay_per_fanout_ns * fanout
            )

        self.flop_ck2q_ns = np.zeros(netlist.n_flops, dtype=float)
        for fi, flop in enumerate(netlist.flops):
            spec = lib.cell(flop.cell)
            load = self.parasitics.cap_of(flop.q)
            self.flop_ck2q_ns[fi] = spec.loaded_delay_ns(load)

    def scaled(
        self,
        gate_drop_v: np.ndarray,
        flop_drop_v: np.ndarray,
        env: Optional[ElectricalEnv] = None,
    ) -> "DelayModel":
        """A copy with every delay degraded by local IR-drop.

        Parameters
        ----------
        gate_drop_v / flop_drop_v:
            Per-gate / per-flop supply droop in volts (VDD drop plus VSS
            bounce as seen by the cell).  Negative entries are clamped.
        env:
            Electrical environment supplying ``k_volt``.
        """
        if env is None:
            env = ElectricalEnv()
        if len(gate_drop_v) != self.netlist.n_gates:
            raise SimulationError(
                f"gate_drop_v has {len(gate_drop_v)} entries for "
                f"{self.netlist.n_gates} gates"
            )
        if len(flop_drop_v) != self.netlist.n_flops:
            raise SimulationError(
                f"flop_drop_v has {len(flop_drop_v)} entries for "
                f"{self.netlist.n_flops} flops"
            )
        clone = object.__new__(DelayModel)
        clone.netlist = self.netlist
        clone.parasitics = self.parasitics
        clone.wire_delay_per_fanout_ns = self.wire_delay_per_fanout_ns
        gd = np.clip(np.asarray(gate_drop_v, dtype=float), 0.0, None)
        fd = np.clip(np.asarray(flop_drop_v, dtype=float), 0.0, None)
        clone.gate_delay_ns = self.gate_delay_ns * (1.0 + env.k_volt * gd)
        clone.flop_ck2q_ns = self.flop_ck2q_ns * (1.0 + env.k_volt * fd)
        return clone

    def static_arrivals_ns(self) -> np.ndarray:
        """Per-net static worst arrival (levelised, loaded delays).

        Flop Q nets start at clock-to-Q; every gate output is the max
        input arrival plus its loaded delay.  Used by the critical-path
        estimate and by timing-aware ATPG's long-path preference.
        """
        from ..netlist.levelize import levelize

        order, _ = levelize(self.netlist)
        arrival = np.zeros(self.netlist.n_nets, dtype=float)
        for fi, flop in enumerate(self.netlist.flops):
            arrival[flop.q] = self.flop_ck2q_ns[fi]
        for gi in order:
            gate = self.netlist.gates[gi]
            worst_in = max(arrival[p] for p in gate.inputs) if gate.inputs else 0.0
            arrival[gate.output] = worst_in + self.gate_delay_ns[gi]
        return arrival

    def critical_path_estimate_ns(self) -> float:
        """Static longest-path estimate through the combinational core.

        Uses levelised arrival propagation with every gate at its loaded
        delay; clock insertion and setup are not included.
        """
        arrival = self.static_arrivals_ns()
        return float(arrival.max()) if len(arrival) else 0.0
