"""Event-driven gate-level timing simulation (the VCS substitute).

Simulates one launch-to-capture cycle with transport-delay semantics:
scheduled output changes are filtered at fire time by a value check, so
hazard pulses wider than a gate delay propagate (glitch power is
captured) while degenerate re-assignments are dropped.

The simulator accumulates exactly what the paper's PLI collects:

* every net transition with its timestamp (optionally a full trace),
* per-block switched energy ``C_i * VDD^2`` (paper Section 2.3),
* the switching time frame window STW — the span from the launch edge
  to the last settling transition,
* per-net last-arrival times for endpoint (scan flop) delay measurement.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import VDD_NOMINAL
from ..errors import SimulationError
from ..netlist.cells import CELL_FUNCTIONS
from ..netlist.netlist import Netlist
from ..netlist.parasitics import ParasiticModel
from .delays import DelayModel

#: A scheduled or applied transition: (time_ns, net, new_value).
LaunchEvent = Tuple[float, int, int]


@dataclass
class TimingResult:
    """Everything measured during one simulated launch-to-capture cycle."""

    stw_ns: float
    capture_time_ns: float
    n_transitions: int
    toggles: np.ndarray
    last_arrival_ns: np.ndarray
    energy_fj_total: float
    energy_fj_by_block: Dict[str, float]
    truncated: bool = False
    trace: Optional[List[LaunchEvent]] = None

    def toggled_nets(self) -> np.ndarray:
        """Indexes of nets that switched at least once."""
        return np.nonzero(self.toggles)[0]

    def energy_in_block(self, block: str) -> float:
        return self.energy_fj_by_block.get(block, 0.0)


def _make_gate_eval(kind, ins):
    """A single-pattern gate evaluator with inputs bound at build time.

    The cell function is inlined per kind (same bit semantics as
    :data:`~repro.netlist.cells.CELL_FUNCTIONS` at mask 1) so the event
    loop's inner body is one call with no second dispatch and no
    argument-tuple allocation.  Unknown kinds fall back to the registry.
    """
    n = len(ins)
    if kind == "INV":
        (i0,) = ins

        def ev(v, _i0=i0):
            return ~v[_i0] & 1
    elif kind in ("BUF", "CLKBUF"):
        (i0,) = ins

        def ev(v, _i0=i0):
            return v[_i0] & 1
    elif kind == "XOR2":
        i0, i1 = ins

        def ev(v, _i0=i0, _i1=i1):
            return (v[_i0] ^ v[_i1]) & 1
    elif kind == "XNOR2":
        i0, i1 = ins

        def ev(v, _i0=i0, _i1=i1):
            return ~(v[_i0] ^ v[_i1]) & 1
    elif kind == "MUX2":
        i0, i1, i2 = ins

        def ev(v, _i0=i0, _i1=i1, _i2=i2):
            sel = v[_i2]
            return ((v[_i0] & ~sel) | (v[_i1] & sel)) & 1
    elif kind == "AOI21":
        i0, i1, i2 = ins

        def ev(v, _i0=i0, _i1=i1, _i2=i2):
            return ~((v[_i0] & v[_i1]) | v[_i2]) & 1
    elif kind == "OAI21":
        i0, i1, i2 = ins

        def ev(v, _i0=i0, _i1=i1, _i2=i2):
            return ~((v[_i0] | v[_i1]) & v[_i2]) & 1
    elif kind.startswith(("AND", "NAND")) and n in (2, 3, 4):
        invert = kind.startswith("NAND")
        if n == 2:
            i0, i1 = ins
            if invert:
                def ev(v, _i0=i0, _i1=i1):
                    return ~(v[_i0] & v[_i1]) & 1
            else:
                def ev(v, _i0=i0, _i1=i1):
                    return v[_i0] & v[_i1] & 1
        elif n == 3:
            i0, i1, i2 = ins
            if invert:
                def ev(v, _i0=i0, _i1=i1, _i2=i2):
                    return ~(v[_i0] & v[_i1] & v[_i2]) & 1
            else:
                def ev(v, _i0=i0, _i1=i1, _i2=i2):
                    return v[_i0] & v[_i1] & v[_i2] & 1
        else:
            i0, i1, i2, i3 = ins
            if invert:
                def ev(v, _i0=i0, _i1=i1, _i2=i2, _i3=i3):
                    return ~(v[_i0] & v[_i1] & v[_i2] & v[_i3]) & 1
            else:
                def ev(v, _i0=i0, _i1=i1, _i2=i2, _i3=i3):
                    return v[_i0] & v[_i1] & v[_i2] & v[_i3] & 1
    elif kind.startswith(("OR", "NOR")) and n in (2, 3, 4):
        invert = kind.startswith("NOR")
        if n == 2:
            i0, i1 = ins
            if invert:
                def ev(v, _i0=i0, _i1=i1):
                    return ~(v[_i0] | v[_i1]) & 1
            else:
                def ev(v, _i0=i0, _i1=i1):
                    return (v[_i0] | v[_i1]) & 1
        elif n == 3:
            i0, i1, i2 = ins
            if invert:
                def ev(v, _i0=i0, _i1=i1, _i2=i2):
                    return ~(v[_i0] | v[_i1] | v[_i2]) & 1
            else:
                def ev(v, _i0=i0, _i1=i1, _i2=i2):
                    return (v[_i0] | v[_i1] | v[_i2]) & 1
        else:
            i0, i1, i2, i3 = ins
            if invert:
                def ev(v, _i0=i0, _i1=i1, _i2=i2, _i3=i3):
                    return ~(v[_i0] | v[_i1] | v[_i2] | v[_i3]) & 1
            else:
                def ev(v, _i0=i0, _i1=i1, _i2=i2, _i3=i3):
                    return (v[_i0] | v[_i1] | v[_i2] | v[_i3]) & 1
    elif kind == "TIE0":
        def ev(v):
            return 0
    elif kind == "TIE1":
        def ev(v):
            return 1
    else:
        fn = CELL_FUNCTIONS[kind]
        ins = tuple(ins)

        def ev(v, _fn=fn, _ins=ins):
            return _fn([v[p] for p in _ins], 1)
    return ev


class EventTimingSim:
    """Reusable event-driven simulator bound to one netlist."""

    def __init__(
        self,
        netlist: Netlist,
        delays: DelayModel,
        parasitics: Optional[ParasiticModel] = None,
        vdd: float = VDD_NOMINAL,
    ):
        self.netlist = netlist
        self.delays = delays
        self.parasitics = (
            parasitics
            if parasitics is not None
            else delays.parasitics
        )
        self.vdd = vdd
        netlist.freeze()

        # Flattened connectivity for the hot loop.
        self._fanout_gates: List[Tuple[int, ...]] = [
            tuple(gi for gi, _pin in netlist.gate_fanouts_of(net))
            for net in range(netlist.n_nets)
        ]
        self._gate_fn = [CELL_FUNCTIONS[g.kind] for g in netlist.gates]
        self._gate_ins = [g.inputs for g in netlist.gates]
        self._gate_out = [g.output for g in netlist.gates]
        self._gate_delay = delays.gate_delay_ns
        # Per-net fanout evaluators: (closure, output net, delay) per
        # driven gate, with the input indexes bound at build time so the
        # event loop does no per-event connectivity lookups or index
        # list construction.
        gate_delay_list = [float(d) for d in delays.gate_delay_ns]
        self._fanout_eval: List[Tuple[Tuple, ...]] = [
            tuple(
                (
                    _make_gate_eval(netlist.gates[gi].kind, self._gate_ins[gi]),
                    self._gate_out[gi],
                    gate_delay_list[gi],
                )
                for gi in self._fanout_gates[net]
            )
            for net in range(netlist.n_nets)
        ]

        # Block attribution: a net belongs to its driver's block.
        self._block_of_net: List[Optional[str]] = [None] * netlist.n_nets
        for g in netlist.gates:
            self._block_of_net[g.output] = g.block
        for f in netlist.flops:
            self._block_of_net[f.q] = f.block
        self._energy_of_net = self.parasitics.net_cap_ff * vdd * vdd
        # Plain-float mirror of the per-net energies: scalar float adds
        # are cheaper than numpy-scalar adds and bit-identical.
        self._energy_list: List[float] = [
            float(e) for e in self._energy_of_net
        ]

    def simulate(
        self,
        initial_values: Sequence[int],
        launch_events: Sequence[LaunchEvent],
        capture_time_ns: float,
        horizon_ns: Optional[float] = None,
        record_trace: bool = False,
    ) -> TimingResult:
        """Run one cycle.

        Parameters
        ----------
        initial_values:
            Settled pre-launch value (0/1) per net — typically frame 1 of
            a :func:`repro.sim.logic.loc_launch_capture` run.
        launch_events:
            The flop-output transitions of the launch edge, each at its
            flop's clock arrival + clock-to-Q time.
        capture_time_ns:
            When the capture edge samples endpoint D pins.
        horizon_ns:
            Hard stop for event processing (default ``2 x capture``);
            events beyond it mark the result ``truncated`` (oscillating
            logic), which callers should treat as a simulation smell.
        record_trace:
            Keep the full (time, net, value) trace (memory-heavy).
        """
        n_nets = self.netlist.n_nets
        if len(initial_values) != n_nets:
            raise SimulationError(
                f"initial_values has {len(initial_values)} entries for "
                f"{n_nets} nets"
            )
        if horizon_ns is None:
            horizon_ns = 2.0 * capture_time_ns

        values = list(initial_values)
        toggles: List[int] = [0] * n_nets
        last_arrival: List[float] = [math.nan] * n_nets
        energy_total = 0.0
        energy_by_block: Dict[str, float] = {}
        trace: Optional[List[LaunchEvent]] = [] if record_trace else None

        heappush = heapq.heappush
        heappop = heapq.heappop
        heap: List[Tuple[float, int, int, int]] = []
        seq = 0
        for t, net, val in launch_events:
            heappush(heap, (t, seq, net, val & 1))
            seq += 1

        stw = 0.0
        n_transitions = 0
        truncated = False
        fanout_eval = self._fanout_eval
        energy_of_net = self._energy_list
        block_of_net = self._block_of_net
        by_block_get = energy_by_block.get

        while heap:
            t, _s, net, val = heappop(heap)
            if t > horizon_ns:
                truncated = True
                break
            if values[net] == val:
                continue
            values[net] = val
            n_transitions += 1
            toggles[net] += 1
            last_arrival[net] = t
            if t > stw:
                stw = t
            energy_total += energy_of_net[net]
            block = block_of_net[net]
            if block is not None:
                energy_by_block[block] = (
                    by_block_get(block, 0.0) + energy_of_net[net]
                )
            if trace is not None:
                trace.append((t, net, val))
            for ev, out, dly in fanout_eval[net]:
                heappush(heap, (t + dly, seq, out, ev(values)))
                seq += 1

        return TimingResult(
            stw_ns=stw,
            capture_time_ns=capture_time_ns,
            n_transitions=n_transitions,
            toggles=np.asarray(toggles, dtype=np.int32),
            last_arrival_ns=np.asarray(last_arrival, dtype=float),
            energy_fj_total=energy_total,
            energy_fj_by_block=energy_by_block,
            truncated=truncated,
            trace=trace,
        )


def build_launch_events(
    netlist: Netlist,
    frame1_values: Sequence[int],
    launch_state: Dict[int, int],
    launch_time_of_flop: Dict[int, float],
    ck2q_ns: np.ndarray,
) -> List[LaunchEvent]:
    """Translate a launch-edge state change into simulator events.

    For every flop whose Q changes between V1 (``frame1_values``) and the
    launch state S2, emit a transition at
    ``clock arrival (insertion delay) + clock-to-Q``.
    """
    events: List[LaunchEvent] = []
    for fi, new_q in launch_state.items():
        q_net = netlist.flops[fi].q
        old_q = frame1_values[q_net] & 1
        new_q &= 1
        if old_q != new_q:
            t = launch_time_of_flop[fi] + float(ck2q_ns[fi])
            events.append((t, q_net, new_q))
    return events
