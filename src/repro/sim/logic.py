"""Bit-parallel zero-delay logic simulation.

Net values for a whole batch of patterns are packed into Python
arbitrary-precision integers (bit *k* of a net's word is the net's value
under pattern *k*), so one pass over the levelised gate list simulates
every pattern in the batch simultaneously.  This is the engine behind
launch-state computation, fault simulation and coverage measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import SimulationError
from ..netlist.cells import CELL_FUNCTIONS
from ..netlist.levelize import levelize
from ..netlist.netlist import Netlist


def pack_matrix(matrix: np.ndarray) -> Tuple[Dict[int, int], int]:
    """Pack an ``(n_patterns, n_columns)`` bit matrix into words.

    Bit *p* of column *c*'s word is set when ``matrix[p, c]`` is
    non-zero — the packed form every bit-parallel engine consumes.
    Vectorised: :func:`numpy.packbits` lays each column out as little-
    endian bytes and ``int.from_bytes`` lifts them to Python bigints,
    so the Python-level work is one cheap call per column instead of
    one branch per (pattern, column) pair.

    Returns ``(column -> word, mask)`` with ``mask = (1 << n_patterns)
    - 1``.
    """
    m = np.asarray(matrix)
    if m.ndim != 2:
        raise SimulationError("pack_matrix needs an (n_patterns, n_cols) matrix")
    n_pat, n_cols = m.shape
    mask = (1 << n_pat) - 1
    if n_pat == 0 or n_cols == 0:
        return {c: 0 for c in range(n_cols)}, mask
    bits = (m != 0).astype(np.uint8, copy=False)
    # (ceil(n_pat / 8), n_cols): byte k of a column covers patterns
    # 8k..8k+7, bit p-within-byte = pattern p (little bit order).
    col_bytes = np.packbits(bits, axis=0, bitorder="little").T
    col_bytes = np.ascontiguousarray(col_bytes)
    from_bytes = int.from_bytes
    return (
        {c: from_bytes(col_bytes[c].tobytes(), "little") for c in range(n_cols)},
        mask,
    )


class LogicSim:
    """Reusable zero-delay simulator bound to one netlist.

    The levelised evaluation order and per-gate function pointers are
    computed once; each call then runs in one linear pass.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        netlist.freeze()
        order, _levels = levelize(netlist)
        self._order = order
        # Pre-resolve function pointers and connectivity into flat lists.
        self._fns = [CELL_FUNCTIONS[netlist.gates[gi].kind] for gi in order]
        self._ins = [netlist.gates[gi].inputs for gi in order]
        self._outs = [netlist.gates[gi].output for gi in order]

    def propagate(self, values: List[int], mask: int) -> List[int]:
        """Evaluate all gates in place given source nets already set.

        ``values`` is indexed by net id and must hold the packed words of
        every primary input and flop Q net; the combinational interior is
        overwritten.  Returns ``values`` for chaining.
        """
        fns = self._fns
        ins = self._ins
        outs = self._outs
        for i in range(len(fns)):
            pins = ins[i]
            values[outs[i]] = fns[i]([values[p] for p in pins], mask)
        return values

    def blank_values(self) -> List[int]:
        """A zeroed value array sized for this netlist."""
        return [0] * self.netlist.n_nets

    def run(
        self,
        flop_q: Mapping[int, int],
        pi: Optional[Mapping[int, int]] = None,
        mask: int = 1,
    ) -> List[int]:
        """Simulate the combinational logic from a register/PI state.

        Parameters
        ----------
        flop_q:
            Packed Q value per flop index.  Flops not mentioned default
            to 0.
        pi:
            Packed value per primary-input *net id*; defaults to 0
            (the paper holds primary inputs constant during test).
        mask:
            ``(1 << n_patterns) - 1``.
        """
        values = self.blank_values()
        for fi, word in flop_q.items():
            values[self.netlist.flops[fi].q] = word & mask
        if pi:
            for net, word in pi.items():
                values[net] = word & mask
        return self.propagate(values, mask)

    def next_state(self, values: Sequence[int]) -> Dict[int, int]:
        """Read every flop's D net from a settled value array."""
        return {
            fi: values[f.d] for fi, f in enumerate(self.netlist.flops)
        }


@dataclass(frozen=True)
class LocCycle:
    """All artefacts of one launch-off-capture cycle (batched).

    ``frame1`` / ``frame2`` are full net-value arrays; ``launch_state``
    is the per-flop state after the launch edge; ``captured`` is the
    response captured by the pulsed-domain flops at the capture edge.
    """

    frame1: List[int]
    frame2: List[int]
    launch_state: Dict[int, int]
    captured: Dict[int, int]
    pulsed_flops: Tuple[int, ...]


def loc_launch_capture(
    sim: LogicSim,
    v1: Mapping[int, int],
    domain: str,
    pi: Optional[Mapping[int, int]] = None,
    mask: int = 1,
) -> LocCycle:
    """Simulate a full LOC cycle for a batch of patterns.

    V1 is the shifted-in scan state.  At the launch edge every
    positive-edge flop of *domain* captures its functional D input
    (launch state S2); other domains hold V1 (their clocks are off), and
    the negative-edge cells — which sit on their own scan chain in the
    case study — are masked during the at-speed cycle, as is standard
    practice, so they hold as well.  Frame 2 settles from S2 and the
    capture edge loads the pulsed flops with the response.

    Raises
    ------
    SimulationError
        If the domain has no flops.
    """
    netlist = sim.netlist
    pulsed = tuple(
        fi
        for fi, f in enumerate(netlist.flops)
        if f.clock_domain == domain and f.edge == "pos"
    )
    if not pulsed:
        raise SimulationError(f"no flops in clock domain {domain!r}")

    frame1 = sim.run(v1, pi, mask)
    launch_state = dict(v1)
    for fi in pulsed:
        launch_state[fi] = frame1[netlist.flops[fi].d] & mask
    frame2 = sim.run(launch_state, pi, mask)
    captured = {fi: frame2[netlist.flops[fi].d] & mask for fi in pulsed}
    return LocCycle(frame1, frame2, launch_state, captured, pulsed)


def launch_capture_with_state(
    sim: LogicSim,
    v1: Mapping[int, int],
    v2: Mapping[int, int],
    domain: str,
    pi: Optional[Mapping[int, int]] = None,
    mask: int = 1,
) -> LocCycle:
    """Launch/capture cycle with an *explicitly supplied* launch state.

    This models launch-off-shift (V2 = V1 shifted one chain position —
    during the last shift *every* scan cell shifts, whatever its clock
    domain) and enhanced scan (V2 arbitrary): frame 1 settles from V1,
    the launch edge forces every flop mentioned in ``v2`` to its V2 bit,
    and the capture edge samples the pulsed (positive-edge, target
    domain) flops.

    Flops absent from ``v2`` hold their V1 value.
    """
    netlist = sim.netlist
    pulsed = tuple(
        fi
        for fi, f in enumerate(netlist.flops)
        if f.clock_domain == domain and f.edge == "pos"
    )
    if not pulsed:
        raise SimulationError(f"no flops in clock domain {domain!r}")
    frame1 = sim.run(v1, pi, mask)
    launch_state = dict(v1)
    for fi, word in v2.items():
        launch_state[fi] = word & mask
    frame2 = sim.run(launch_state, pi, mask)
    captured = {fi: frame2[netlist.flops[fi].d] & mask for fi in pulsed}
    return LocCycle(frame1, frame2, launch_state, captured, pulsed)
