"""Bit-parallel zero-delay logic simulation.

Net values for a whole batch of patterns are packed into Python
arbitrary-precision integers (bit *k* of a net's word is the net's value
under pattern *k*), so one pass over the levelised gate list simulates
every pattern in the batch simultaneously.  This is the engine behind
launch-state computation, fault simulation and coverage measurement.

Two interchangeable inner loops sit behind :meth:`LogicSim.run`:

* the **bigint** loop — one Python call per gate over packed bigints
  (cheap at small design sizes and arbitrary batch widths);
* the **vectorised** loop (:meth:`LogicSim.propagate_words`) — net
  values held as a ``(n_nets, n_words)`` ``uint64`` matrix and gates
  evaluated per (level, kind) *group* with a handful of numpy bitwise
  ops each, extending the :func:`pack_matrix` ``np.packbits`` win into
  the simulation itself.  Per-gate Python dispatch disappears, so the
  win grows with design size; ``run`` auto-selects it for designs past
  :data:`VECTOR_MIN_GATES` and batches past :data:`VECTOR_MIN_PATTERNS`
  (both paths are bit-identical — asserted in tests and benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import SimulationError
from ..netlist.cells import CELL_FUNCTIONS
from ..netlist.levelize import levelize
from ..netlist.netlist import Netlist


def pack_matrix(matrix: np.ndarray) -> Tuple[Dict[int, int], int]:
    """Pack an ``(n_patterns, n_columns)`` bit matrix into words.

    Bit *p* of column *c*'s word is set when ``matrix[p, c]`` is
    non-zero — the packed form every bit-parallel engine consumes.
    Vectorised: :func:`numpy.packbits` lays each column out as little-
    endian bytes and ``int.from_bytes`` lifts them to Python bigints,
    so the Python-level work is one cheap call per column instead of
    one branch per (pattern, column) pair.

    Returns ``(column -> word, mask)`` with ``mask = (1 << n_patterns)
    - 1``.
    """
    m = np.asarray(matrix)
    if m.ndim != 2:
        raise SimulationError("pack_matrix needs an (n_patterns, n_cols) matrix")
    n_pat, n_cols = m.shape
    mask = (1 << n_pat) - 1
    if n_pat == 0 or n_cols == 0:
        return {c: 0 for c in range(n_cols)}, mask
    bits = (m != 0).astype(np.uint8, copy=False)
    # (ceil(n_pat / 8), n_cols): byte k of a column covers patterns
    # 8k..8k+7, bit p-within-byte = pattern p (little bit order).
    col_bytes = np.packbits(bits, axis=0, bitorder="little").T
    col_bytes = np.ascontiguousarray(col_bytes)
    from_bytes = int.from_bytes
    return (
        {c: from_bytes(col_bytes[c].tobytes(), "little") for c in range(n_cols)},
        mask,
    )


#: Designs below this gate count stay on the bigint loop — numpy group
#: dispatch only amortises once levels hold enough gates.
VECTOR_MIN_GATES = 2000
#: Batches below one machine word stay on the bigint loop (the word
#: matrix would be all conversion, no amortisation).
VECTOR_MIN_PATTERNS = 64
#: Very wide batches favour bigints again (CPython's multi-limb ops
#: amortise the per-gate overhead; the word matrix starts paying real
#: memory traffic for the gather/scatter).
VECTOR_MAX_PATTERNS = 4096

_WORD_BITS = 64
_U64_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def values_to_words(values: Sequence[int], n_patterns: int) -> np.ndarray:
    """Packed bigint values -> ``(n_nets, n_words)`` uint64 matrix."""
    n_words = max(1, (n_patterns + _WORD_BITS - 1) // _WORD_BITS)
    nbytes = n_words * 8
    buf = b"".join(v.to_bytes(nbytes, "little") for v in values)
    return (
        np.frombuffer(buf, dtype="<u8")
        .reshape(len(values), n_words)
        .astype(np.uint64, copy=True)
    )


def words_to_values(words: np.ndarray, mask: int) -> List[int]:
    """``(n_nets, n_words)`` uint64 matrix -> packed bigint values.

    The tail word is masked so bits past the batch width never leak
    into the bigints (keeps the vector path bit-identical with the
    masked bigint loop).
    """
    w = np.ascontiguousarray(words, dtype="<u8")
    n_words = w.shape[1]
    tail = mask >> (_WORD_BITS * (n_words - 1))
    w[:, -1] &= np.uint64(tail)
    raw = w.tobytes()
    step = n_words * 8
    from_bytes = int.from_bytes
    return [
        from_bytes(raw[i * step:(i + 1) * step], "little")
        for i in range(w.shape[0])
    ]


class LogicSim:
    """Reusable zero-delay simulator bound to one netlist.

    The levelised evaluation order and per-gate function pointers are
    computed once; each call then runs in one linear pass.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        netlist.freeze()
        order, _levels = levelize(netlist)
        self._order = order
        self._levels = _levels
        # Pre-resolve function pointers and connectivity into flat lists.
        self._fns = [CELL_FUNCTIONS[netlist.gates[gi].kind] for gi in order]
        self._ins = [netlist.gates[gi].inputs for gi in order]
        self._outs = [netlist.gates[gi].output for gi in order]
        #: (kind, input-net id arrays, output-net id array) per
        #: (level, kind, fan-in) group — built lazily on first vector run.
        self._vector_plan: Optional[
            List[Tuple[str, np.ndarray, np.ndarray]]
        ] = None

    def propagate(self, values: List[int], mask: int) -> List[int]:
        """Evaluate all gates in place given source nets already set.

        ``values`` is indexed by net id and must hold the packed words of
        every primary input and flop Q net; the combinational interior is
        overwritten.  Returns ``values`` for chaining.
        """
        fns = self._fns
        ins = self._ins
        outs = self._outs
        for i in range(len(fns)):
            pins = ins[i]
            values[outs[i]] = fns[i]([values[p] for p in pins], mask)
        return values

    def blank_values(self) -> List[int]:
        """A zeroed value array sized for this netlist."""
        return [0] * self.netlist.n_nets

    # ------------------------------------------------------------------
    # vectorised inner loop
    # ------------------------------------------------------------------
    def vector_plan(self) -> List[Tuple[str, np.ndarray, np.ndarray]]:
        """Level-ordered (kind, inputs, outputs) gate groups.

        Gates of one level share no data dependencies, so every
        ``(level, kind, fan-in)`` group evaluates with a few whole-group
        numpy ops: ``ins`` is ``(fan_in, n_group)`` net ids, ``outs``
        ``(n_group,)``.
        """
        if self._vector_plan is None:
            gates = self.netlist.gates
            by_level: Dict[int, List[int]] = {}
            for gi in self._order:
                by_level.setdefault(self._levels[gi], []).append(gi)
            plan: List[Tuple[str, np.ndarray, np.ndarray]] = []
            for level in sorted(by_level):
                groups: Dict[Tuple[str, int], List[int]] = {}
                for gi in by_level[level]:
                    g = gates[gi]
                    groups.setdefault((g.kind, len(g.inputs)), []).append(gi)
                for (kind, fan_in), members in groups.items():
                    ins = np.array(
                        [
                            [gates[gi].inputs[k] for gi in members]
                            for k in range(fan_in)
                        ],
                        dtype=np.intp,
                    ).reshape(fan_in, len(members))
                    outs = np.array(
                        [gates[gi].output for gi in members], dtype=np.intp
                    )
                    plan.append((kind, ins, outs))
            self._vector_plan = plan
        return self._vector_plan

    def propagate_words(self, words: np.ndarray) -> np.ndarray:
        """Evaluate all gates in place on a ``(n_nets, n_words)`` matrix.

        Bits past the batch width may hold garbage afterwards (bitwise
        ops never mix bit positions, so they cannot contaminate live
        bits); :func:`words_to_values` masks the tail on the way out.
        Returns *words* for chaining.
        """
        for kind, ins, outs in self.vector_plan():
            if kind == "TIE0":
                words[outs] = 0
                continue
            if kind == "TIE1":
                words[outs] = _U64_ONES
                continue
            a = words[ins[0]]
            if kind in ("BUF", "CLKBUF"):
                r = a
            elif kind == "INV":
                r = ~a
            elif kind.startswith(("AND", "NAND")):
                r = a.copy()
                for k in range(1, ins.shape[0]):
                    r &= words[ins[k]]
                if kind.startswith("NAND"):
                    np.invert(r, out=r)
            elif kind.startswith(("OR", "NOR")):
                r = a.copy()
                for k in range(1, ins.shape[0]):
                    r |= words[ins[k]]
                if kind.startswith("NOR"):
                    np.invert(r, out=r)
            elif kind == "XOR2":
                r = a ^ words[ins[1]]
            elif kind == "XNOR2":
                r = ~(a ^ words[ins[1]])
            elif kind == "MUX2":
                sel = words[ins[2]]
                r = (a & ~sel) | (words[ins[1]] & sel)
            elif kind == "AOI21":
                r = ~((a & words[ins[1]]) | words[ins[2]])
            elif kind == "OAI21":
                r = ~((a | words[ins[1]]) & words[ins[2]])
            else:
                raise SimulationError(
                    f"no vector evaluator for cell kind {kind!r}"
                )
            words[outs] = r
        return words

    def _vector_profitable(self, n_patterns: int) -> bool:
        return (
            self.netlist.n_gates >= VECTOR_MIN_GATES
            and VECTOR_MIN_PATTERNS <= n_patterns <= VECTOR_MAX_PATTERNS
        )

    def _run_vector(
        self,
        flop_q: Mapping[int, int],
        pi: Optional[Mapping[int, int]],
        mask: int,
    ) -> List[int]:
        n_pat = mask.bit_length()
        n_words = max(1, (n_pat + _WORD_BITS - 1) // _WORD_BITS)
        nbytes = n_words * 8
        words = np.zeros((self.netlist.n_nets, n_words), dtype=np.uint64)
        flops = self.netlist.flops
        for fi, word in flop_q.items():
            words[flops[fi].q] = np.frombuffer(
                (word & mask).to_bytes(nbytes, "little"), dtype="<u8"
            )
        if pi:
            for net, word in pi.items():
                words[net] = np.frombuffer(
                    (word & mask).to_bytes(nbytes, "little"), dtype="<u8"
                )
        return words_to_values(self.propagate_words(words), mask)

    def run(
        self,
        flop_q: Mapping[int, int],
        pi: Optional[Mapping[int, int]] = None,
        mask: int = 1,
        engine: str = "auto",
    ) -> List[int]:
        """Simulate the combinational logic from a register/PI state.

        Parameters
        ----------
        flop_q:
            Packed Q value per flop index.  Flops not mentioned default
            to 0.
        pi:
            Packed value per primary-input *net id*; defaults to 0
            (the paper holds primary inputs constant during test).
        mask:
            ``(1 << n_patterns) - 1``.
        engine:
            ``"auto"`` (default) picks the vectorised loop for large
            designs and machine-word-or-wider batches; ``"bigint"`` /
            ``"vector"`` force a path.  All paths are bit-identical.
        """
        if engine not in ("auto", "bigint", "vector"):
            raise SimulationError(f"unknown logic engine {engine!r}")
        if engine == "vector" or (
            engine == "auto" and self._vector_profitable(mask.bit_length())
        ):
            return self._run_vector(flop_q, pi, mask)
        values = self.blank_values()
        for fi, word in flop_q.items():
            values[self.netlist.flops[fi].q] = word & mask
        if pi:
            for net, word in pi.items():
                values[net] = word & mask
        return self.propagate(values, mask)

    def next_state(self, values: Sequence[int]) -> Dict[int, int]:
        """Read every flop's D net from a settled value array."""
        return {
            fi: values[f.d] for fi, f in enumerate(self.netlist.flops)
        }


@dataclass(frozen=True)
class LocCycle:
    """All artefacts of one launch-off-capture cycle (batched).

    ``frame1`` / ``frame2`` are full net-value arrays; ``launch_state``
    is the per-flop state after the launch edge; ``captured`` is the
    response captured by the pulsed-domain flops at the capture edge.
    """

    frame1: List[int]
    frame2: List[int]
    launch_state: Dict[int, int]
    captured: Dict[int, int]
    pulsed_flops: Tuple[int, ...]


def loc_launch_capture(
    sim: LogicSim,
    v1: Mapping[int, int],
    domain: str,
    pi: Optional[Mapping[int, int]] = None,
    mask: int = 1,
) -> LocCycle:
    """Simulate a full LOC cycle for a batch of patterns.

    V1 is the shifted-in scan state.  At the launch edge every
    positive-edge flop of *domain* captures its functional D input
    (launch state S2); other domains hold V1 (their clocks are off), and
    the negative-edge cells — which sit on their own scan chain in the
    case study — are masked during the at-speed cycle, as is standard
    practice, so they hold as well.  Frame 2 settles from S2 and the
    capture edge loads the pulsed flops with the response.

    Raises
    ------
    SimulationError
        If the domain has no flops.
    """
    netlist = sim.netlist
    pulsed = tuple(
        fi
        for fi, f in enumerate(netlist.flops)
        if f.clock_domain == domain and f.edge == "pos"
    )
    if not pulsed:
        raise SimulationError(f"no flops in clock domain {domain!r}")

    frame1 = sim.run(v1, pi, mask)
    launch_state = dict(v1)
    for fi in pulsed:
        launch_state[fi] = frame1[netlist.flops[fi].d] & mask
    frame2 = sim.run(launch_state, pi, mask)
    captured = {fi: frame2[netlist.flops[fi].d] & mask for fi in pulsed}
    return LocCycle(frame1, frame2, launch_state, captured, pulsed)


def launch_capture_with_state(
    sim: LogicSim,
    v1: Mapping[int, int],
    v2: Mapping[int, int],
    domain: str,
    pi: Optional[Mapping[int, int]] = None,
    mask: int = 1,
) -> LocCycle:
    """Launch/capture cycle with an *explicitly supplied* launch state.

    This models launch-off-shift (V2 = V1 shifted one chain position —
    during the last shift *every* scan cell shifts, whatever its clock
    domain) and enhanced scan (V2 arbitrary): frame 1 settles from V1,
    the launch edge forces every flop mentioned in ``v2`` to its V2 bit,
    and the capture edge samples the pulsed (positive-edge, target
    domain) flops.

    Flops absent from ``v2`` hold their V1 value.
    """
    netlist = sim.netlist
    pulsed = tuple(
        fi
        for fi, f in enumerate(netlist.flops)
        if f.clock_domain == domain and f.edge == "pos"
    )
    if not pulsed:
        raise SimulationError(f"no flops in clock domain {domain!r}")
    frame1 = sim.run(v1, pi, mask)
    launch_state = dict(v1)
    for fi, word in v2.items():
        launch_state[fi] = word & mask
    frame2 = sim.run(launch_state, pi, mask)
    captured = {fi: frame2[netlist.flops[fi].d] & mask for fi in pulsed}
    return LocCycle(frame1, frame2, launch_state, captured, pulsed)
