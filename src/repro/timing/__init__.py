"""Noise-aware static timing safety bounds (`repro.timing`).

A provably conservative droop-derated delay upper bound per pattern and
per endpoint (:mod:`repro.timing.bound`), and the pre-screen that uses
it to prune the IR-drop-scaled re-simulation
(:mod:`repro.timing.prescreen`).
"""

from .bound import (
    AT_RISK,
    CLASSIFICATIONS,
    INACTIVE,
    SAFE_DERATED,
    SAFE_STATIC,
    DroopBoundAnalyzer,
    DroopBoundReport,
    EndpointBound,
)
from .prescreen import (
    PrescreenedComparison,
    TimingPrescreenSummary,
    prescreen_pattern_set,
    prescreened_endpoint_comparison,
)

__all__ = [
    "AT_RISK",
    "CLASSIFICATIONS",
    "INACTIVE",
    "SAFE_DERATED",
    "SAFE_STATIC",
    "DroopBoundAnalyzer",
    "DroopBoundReport",
    "EndpointBound",
    "PrescreenedComparison",
    "TimingPrescreenSummary",
    "prescreen_pattern_set",
    "prescreened_endpoint_comparison",
]
