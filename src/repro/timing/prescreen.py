"""The noise-aware timing pre-screen: prove endpoints safe, skip Case 2.

:func:`prescreened_endpoint_comparison` is the drop-in, bound-gated
version of :func:`~repro.core.irscale.ir_scaled_endpoint_comparison`.
Per pattern it runs up to three tiers, each strictly cheaper than the
stage it can avoid:

* **Tier A (fully static, zero simulation)** — the worst-case droop
  bound of :class:`~repro.timing.bound.DroopBoundAnalyzer`, tightened
  by one zero-delay logic pass.  A pattern whose every endpoint is
  proven safe or inactive here skips *both* simulations.
* **Tier B (nominal simulation only)** — the nominal event simulation
  and its dynamic IR solve (Case 1, which the full comparison pays
  anyway), then a derated static re-analysis under the *actual* droop
  field via :func:`~repro.sim.sta.derates_from_ir`.  Far tighter than
  Tier A; endpoints proven safe here skip the Case-2 scaled event
  re-simulation.
* **Tier C (the full comparison)** — only endpoints still *at_risk*
  are settled by the IR-scaled re-simulation itself.

Every skip is backed by the soundness chain documented in
:mod:`repro.timing.bound`; :func:`prescreen_pattern_set` additionally
*audits* the inequality empirically (bound >= simulated IR-scaled
delay, like the PWR-SCAP bound's tests) on a configurable sample of
patterns and reports the result for the flow's ``timing`` stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..config import ElectricalEnv
from ..core.irscale import (
    IrScaledComparison,
    ir_nominal_case,
    ir_scaled_case,
)
from ..errors import ConfigError
from ..obs import current_telemetry
from ..pgrid.grid import GridModel
from ..power.calculator import ScapCalculator
from ..sim.sta import derates_from_ir
from .bound import (
    AT_RISK,
    CLASSIFICATIONS,
    INACTIVE,
    SAFE_DERATED,
    SAFE_STATIC,
    DroopBoundAnalyzer,
    DroopBoundReport,
    EndpointBound,
)


@dataclass
class PrescreenedComparison:
    """Outcome of the bound-gated two-case comparison for one pattern."""

    report: DroopBoundReport
    #: Case-1 measured delays; None when Tier A proved the whole
    #: pattern safe and no simulation ran at all.
    nominal_ns: Optional[Dict[int, float]] = None
    #: Case-2 measured delays; None when the scaled re-simulation was
    #: skipped (every endpoint proven safe or inactive).
    scaled_ns: Optional[Dict[int, float]] = None
    #: The classic comparison object, populated only when Case 2 ran.
    comparison: Optional[IrScaledComparison] = None

    @property
    def skipped_all_simulation(self) -> bool:
        return self.nominal_ns is None

    @property
    def skipped_scaled_sim(self) -> bool:
        return self.scaled_ns is None

    def misses(self) -> List[int]:
        """Endpoints whose IR-scaled delay misses the cycle.

        Endpoints proven safe contribute nothing by the soundness of
        the bound; at-risk endpoints are judged by their actual scaled
        re-simulation.
        """
        out: List[int] = []
        for fi in self.report.at_risk():
            ep = self.report.endpoints[fi]
            scaled = (self.scaled_ns or {}).get(fi, 0.0)
            if scaled > ep.limit_ns:
                out.append(fi)
        return out

    def soundness_violations(self) -> List[Dict[str, Any]]:
        """Empirical check of the bound against whatever was simulated.

        For every endpoint with a simulated IR-scaled delay, the bound
        must dominate it (and the nominal delay, since derates are
        >= 1).  Returns one record per violated endpoint — always
        expected empty; asserted by the tests and the audit pass.
        """
        out: List[Dict[str, Any]] = []
        for fi, ep in self.report.endpoints.items():
            for kind, delays in (
                ("scaled", self.scaled_ns),
                ("nominal", self.nominal_ns),
            ):
                if delays is None or fi not in delays:
                    continue
                simulated = delays[fi]
                bound = ep.measured_bound_ns
                if simulated > bound + 1e-9:
                    out.append(
                        {
                            "endpoint": fi,
                            "simulated_ns": simulated,
                            "bound_ns": bound,
                            "kind": kind,
                        }
                    )
        return out


def prescreened_endpoint_comparison(
    calculator: ScapCalculator,
    model: GridModel,
    pattern: Any,
    index: Optional[int] = None,
    env: Optional[ElectricalEnv] = None,
    analyzer: Optional[DroopBoundAnalyzer] = None,
    static_tier: bool = True,
) -> PrescreenedComparison:
    """Bound-gated replacement for ``ir_scaled_endpoint_comparison``.

    Identical verdicts (which endpoints miss the cycle, and the exact
    scaled delays of every endpoint that needed re-simulation), but
    provably-safe endpoints are settled by static analysis instead of
    simulation.  Pass a shared *analyzer* when screening many patterns
    so the grid factorisation and STA structures are built once;
    ``static_tier=False`` skips Tier A (useful when the worst-case
    droop bound is known to be too loose to certify anything).
    """
    if env is None:
        env = ElectricalEnv()
    if isinstance(pattern, dict):
        v1, idx = pattern, index if index is not None else 0
    else:
        v1, idx = pattern.v1_dict(), pattern.index
    if analyzer is None:
        analyzer = DroopBoundAnalyzer(
            calculator.design,
            calculator.domain,
            model=model,
            env=env,
            delays=calculator.delays,
        )
    tel = current_telemetry()

    # Tier A: zero-simulation worst-case droop bound.
    tier_a: Optional[DroopBoundReport] = None
    if static_tier:
        tier_a = analyzer.pattern_bounds(v1, idx)
        if tier_a.fully_safe:
            tel.count("timing.patterns_static_safe")
            return PrescreenedComparison(report=tier_a)
        seeds = tier_a.seeds
    else:
        seeds = analyzer.scap.toggling_launch_flops(v1)

    # Tier B: Case 1 (paid by the full comparison too) + derated STA
    # under the pattern's actual droop field.
    _timing, ir, nominal_delays = ir_nominal_case(calculator, model, v1)
    gate_derate, flop_derate = derates_from_ir(ir, env)
    tier_b = analyzer.derated_bounds(seeds, gate_derate, flop_derate, idx)
    report = _merge(tier_a, tier_b)
    if report.fully_safe:
        tel.count("timing.patterns_derated_safe")
        return PrescreenedComparison(report=report, nominal_ns=nominal_delays)

    # Tier C: the scaled re-simulation, for the holdouts only.
    tel.count("timing.patterns_resimulated")
    scaled_delays = ir_scaled_case(calculator, model, v1, ir, env)
    comparison = IrScaledComparison(
        pattern_index=idx,
        nominal_ns=nominal_delays,
        scaled_ns=scaled_delays,
        ir=ir,
    )
    return PrescreenedComparison(
        report=report,
        nominal_ns=nominal_delays,
        scaled_ns=scaled_delays,
        comparison=comparison,
    )


def _merge(
    tier_a: Optional[DroopBoundReport], tier_b: DroopBoundReport
) -> DroopBoundReport:
    """Combine the static and derated bounds, endpoint by endpoint.

    Both are sound upper bounds, so the minimum is too; an endpoint is
    safe as soon as either tier proves it (labelled by the cheaper
    proof that succeeded).
    """
    if tier_a is None:
        return tier_b
    endpoints: Dict[int, EndpointBound] = {}
    for fi, a in tier_a.endpoints.items():
        b = tier_b.endpoints.get(fi, a)
        if a.classification in (INACTIVE, SAFE_STATIC):
            endpoints[fi] = a
            continue
        bound = min(a.measured_bound_ns, b.measured_bound_ns)
        if b.classification in (INACTIVE, SAFE_DERATED):
            label = b.classification
        else:
            label = AT_RISK
        endpoints[fi] = EndpointBound(
            flop=fi,
            flop_name=a.flop_name,
            measured_bound_ns=bound,
            limit_ns=a.limit_ns,
            classification=label,
        )
    merged = DroopBoundReport(
        domain=tier_a.domain,
        period_ns=tier_a.period_ns,
        pattern_index=tier_a.pattern_index,
        endpoints=endpoints,
        block_droop_bound_v=dict(tier_a.block_droop_bound_v),
        seeds=set(tier_a.seeds),
    )
    return merged


@dataclass
class TimingPrescreenSummary:
    """Aggregate pre-screen outcome over a pattern set (flow stage)."""

    domain: str
    period_ns: float
    n_patterns: int = 0
    endpoint_counts: Dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in CLASSIFICATIONS}
    )
    #: Patterns settled with zero / Case-1-only / full simulation.
    patterns_static_safe: int = 0
    patterns_derated_safe: int = 0
    patterns_resimulated: int = 0
    #: (pattern, endpoint) misses found among at-risk endpoints.
    misses: List[Tuple[int, int]] = field(default_factory=list)
    #: Empirical bound-vs-simulation audit.
    soundness_checked: int = 0
    soundness_violations: int = 0
    worst_bound_slack_ns: float = float("inf")
    elapsed_s: float = 0.0

    @property
    def endpoints_total(self) -> int:
        return sum(self.endpoint_counts.values())

    @property
    def pruned_endpoint_fraction(self) -> float:
        """Fraction of endpoint measurements settled without the
        IR-scaled re-simulation."""
        total = self.endpoints_total
        if total == 0:
            return 0.0
        return 1.0 - self.endpoint_counts[AT_RISK] / total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "domain": self.domain,
            "period_ns": self.period_ns,
            "n_patterns": self.n_patterns,
            "endpoints_total": self.endpoints_total,
            "endpoint_counts": dict(self.endpoint_counts),
            "patterns_static_safe": self.patterns_static_safe,
            "patterns_derated_safe": self.patterns_derated_safe,
            "patterns_resimulated": self.patterns_resimulated,
            "pruned_endpoint_fraction": round(
                self.pruned_endpoint_fraction, 6
            ),
            "misses": [list(m) for m in self.misses],
            "soundness_checked": self.soundness_checked,
            "soundness_violations": self.soundness_violations,
            "worst_bound_slack_ns": (
                None
                if self.worst_bound_slack_ns == float("inf")
                else round(self.worst_bound_slack_ns, 6)
            ),
            "elapsed_s": round(self.elapsed_s, 6),
        }


def prescreen_pattern_set(
    calculator: ScapCalculator,
    model: GridModel,
    patterns: Any,
    env: Optional[ElectricalEnv] = None,
    max_patterns: Optional[int] = None,
    static_tier: bool = True,
    audit_patterns: int = 3,
) -> TimingPrescreenSummary:
    """Screen every pattern of a set, collecting the flow-stage digest.

    *audit_patterns* leading patterns additionally run the full
    IR-scaled re-simulation regardless of their classification, so the
    summary carries an empirical soundness check (bound >= simulated
    IR-scaled delay for every audited endpoint) exactly like the
    PWR-SCAP bound's validation — without paying full simulation for
    the whole set.
    """
    if env is None:
        env = ElectricalEnv()
    if max_patterns is not None and max_patterns <= 0:
        raise ConfigError("max_patterns must be positive")
    analyzer = DroopBoundAnalyzer(
        calculator.design,
        calculator.domain,
        model=model,
        env=env,
        delays=calculator.delays,
    )
    summary = TimingPrescreenSummary(
        domain=calculator.domain, period_ns=calculator.period_ns
    )
    tel = current_telemetry()
    started = time.time()
    with tel.span("timing.prescreen", domain=calculator.domain):
        for pi, pattern in enumerate(patterns):
            if max_patterns is not None and pi >= max_patterns:
                break
            result = prescreened_endpoint_comparison(
                calculator,
                model,
                pattern,
                index=pi,
                env=env,
                analyzer=analyzer,
                static_tier=static_tier,
            )
            summary.n_patterns += 1
            counts = result.report.counts()
            for label, n in counts.items():
                summary.endpoint_counts[label] += n
            if result.skipped_all_simulation:
                summary.patterns_static_safe += 1
            elif result.skipped_scaled_sim:
                summary.patterns_derated_safe += 1
            else:
                summary.patterns_resimulated += 1
            worst = result.report.worst_bound_slack_ns()
            if worst < summary.worst_bound_slack_ns:
                summary.worst_bound_slack_ns = worst
            for fi in result.misses():
                summary.misses.append((pi, fi))

            # Audit pass: simulate anyway and verify the inequality.
            if pi < audit_patterns:
                audited = result
                if audited.scaled_ns is None:
                    v1 = (
                        pattern
                        if isinstance(pattern, dict)
                        else pattern.v1_dict()
                    )
                    _t, ir, nominal = ir_nominal_case(
                        calculator, model, v1
                    )
                    audited = PrescreenedComparison(
                        report=result.report,
                        nominal_ns=nominal,
                        scaled_ns=ir_scaled_case(
                            calculator, model, v1, ir, env
                        ),
                    )
                violations = audited.soundness_violations()
                summary.soundness_checked += len(
                    audited.scaled_ns or {}
                )
                summary.soundness_violations += len(violations)
                if violations:
                    tel.count(
                        "timing.soundness_violations", len(violations)
                    )
    summary.elapsed_s = time.time() - started
    tel.count("timing.endpoints_pruned",
              summary.endpoints_total
              - summary.endpoint_counts[AT_RISK])
    return summary
