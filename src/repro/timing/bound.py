"""The droop-derated static delay upper bound (the noise-aware STA).

The paper validates noise-tolerant patterns by re-simulating every
endpoint with per-instance delays scaled by ``Delay * (1 + k_volt *
dV)`` — the most expensive stage of the flow.  Most endpoints provably
cannot miss the cycle even under *worst-case* droop; this module
computes, per pattern and per endpoint, a delay upper bound that is
**sound** against the IR-drop-scaled event simulation of
:func:`repro.core.irscale.ir_scaled_endpoint_comparison`, so the
re-simulation can be skipped wherever the bound already closes timing.

Soundness chain (each link dominates the simulated quantity):

1.  **Toggles.**  :class:`~repro.power.static_bound.StaticScapBound`'s
    levelised toggle bound, seeded by the launch flops that actually
    toggle (one zero-delay logic pass — *delay-independent*, so the
    same flops launch in the nominal and the scaled simulation),
    dominates every net's toggle count in either simulation.
2.  **Currents.**  Net energy is ``toggles * C * VDD^2`` charged to the
    driver's tap, averaged over the simulation's STW.  The bound uses
    the toggle bound over the *smallest STW any of the seeds permits*
    (the earliest seed launch event), plus the identical ungated
    clock-tree baseline :func:`~repro.pgrid.dynamic_ir.
    dynamic_ir_for_pattern` injects — so every tap's bound current
    dominates its simulated current.
3.  **Droop.**  Both rails are resistive meshes with grounded pads:
    their conductance matrices are M-matrices, so the inverse is
    elementwise non-negative and the node drop is monotone in the
    injection — bound currents give bound droops, elementwise.
4.  **Derates.**  ``1 + k_volt * dV`` is monotone in ``dV``; bound
    droops give per-instance derate factors that dominate the factors
    the scaled simulation applies.
5.  **Arrival.**  A levelised static worst-arrival propagation with
    dominating per-instance delays and the same seeds dominates the
    event simulator's last data arrival at every endpoint.
6.  **Measured delay.**  The paper measures endpoint delay against the
    endpoint's *own* capture-clock arrival.  The scaled capture clock
    is never faster than nominal (derates are >= 1), so ``static
    arrival - nominal clock arrival`` dominates the measured scaled
    delay.  An endpoint misses the cycle only when its measured delay
    exceeds ``period - setup``; non-negative bound slack is therefore a
    *proof* the endpoint captures correctly under this pattern's noise.

The bound is pessimistic by design (toggle bounds grow
multiplicatively with logic depth); its per-pattern tightening and the
post-simulation derated re-analysis of
:mod:`repro.timing.prescreen` are what make it a useful pre-screen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from ..config import ElectricalEnv
from ..errors import ConfigError
from ..power.energy import clock_buffer_energies_fj
from ..power.static_bound import StaticScapBound
from ..sim.delays import DelayModel
from ..sim.sta import SETUP_NS, StaticTimingAnalyzer
from ..soc.design import SocDesign

try:  # the grid is optional: without it only derated re-analysis works
    from ..pgrid.grid import GridModel
except Exception:  # pragma: no cover - scipy is a hard dep in practice
    GridModel = None  # type: ignore[assignment,misc]

#: Endpoint classifications, ordered from cheapest proof to none.
INACTIVE = "inactive"
SAFE_STATIC = "safe_static"
SAFE_DERATED = "safe_derated"
AT_RISK = "at_risk"

CLASSIFICATIONS = (INACTIVE, SAFE_STATIC, SAFE_DERATED, AT_RISK)


@dataclass
class EndpointBound:
    """The droop-derated delay bound at one capture flop."""

    flop: int
    flop_name: str
    #: Upper bound on the measured (clock-relative) path delay, ns.
    #: 0.0 for endpoints the pattern provably cannot activate.
    measured_bound_ns: float
    #: The miss threshold: ``period - setup`` (measured-delay domain).
    limit_ns: float
    classification: str

    @property
    def bound_slack_ns(self) -> float:
        """How far the bound stays inside the cycle; >= 0 is a proof."""
        return self.limit_ns - self.measured_bound_ns

    @property
    def provably_safe(self) -> bool:
        return self.classification != AT_RISK


@dataclass
class DroopBoundReport:
    """Per-endpoint droop-derated bounds for one pattern."""

    domain: str
    period_ns: float
    pattern_index: int
    endpoints: Dict[int, EndpointBound]
    #: Worst-case total droop bound (VDD sag + VSS bounce) per block,
    #: from the static current bound; empty when no grid was supplied.
    block_droop_bound_v: Dict[str, float] = field(default_factory=dict)
    #: Launch flops the zero-delay pass found toggling.
    seeds: Set[int] = field(default_factory=set)

    def counts(self) -> Dict[str, int]:
        out = {c: 0 for c in CLASSIFICATIONS}
        for ep in self.endpoints.values():
            out[ep.classification] += 1
        return out

    def at_risk(self) -> List[int]:
        """Endpoints still needing the IR-scaled re-simulation."""
        return sorted(
            fi
            for fi, ep in self.endpoints.items()
            if ep.classification == AT_RISK
        )

    def provably_safe(self) -> List[int]:
        return sorted(
            fi
            for fi, ep in self.endpoints.items()
            if ep.classification != AT_RISK
        )

    @property
    def fully_safe(self) -> bool:
        """True when no endpoint needs re-simulation."""
        return not self.at_risk()

    def worst_bound_slack_ns(self) -> float:
        active = [
            ep.bound_slack_ns
            for ep in self.endpoints.values()
            if ep.classification != INACTIVE
        ]
        return min(active) if active else float("inf")

    def to_dict(self) -> Dict[str, object]:
        return {
            "domain": self.domain,
            "period_ns": self.period_ns,
            "pattern_index": self.pattern_index,
            "counts": self.counts(),
            "worst_bound_slack_ns": (
                None
                if self.worst_bound_slack_ns() == float("inf")
                else round(self.worst_bound_slack_ns(), 6)
            ),
            "block_droop_bound_v": {
                b: round(v, 6)
                for b, v in sorted(self.block_droop_bound_v.items())
            },
        }


class DroopBoundAnalyzer:
    """Noise-aware static timing bounds for one design + clock domain.

    Composes :class:`~repro.power.static_bound.StaticScapBound` (toggle
    and current bounds) with a derated
    :class:`~repro.sim.sta.StaticTimingAnalyzer` sweep.  With a
    :class:`~repro.pgrid.grid.GridModel` the fully static
    :meth:`pattern_bounds` needs **zero simulation**; without one, only
    :meth:`derated_bounds` (re-analysis under a given IR field) is
    available.
    """

    def __init__(
        self,
        design: SocDesign,
        domain: Optional[str] = None,
        model: Optional["GridModel"] = None,
        env: Optional[ElectricalEnv] = None,
        delays: Optional[DelayModel] = None,
        setup_ns: float = SETUP_NS,
    ) -> None:
        self.design = design
        self.domain = (
            domain if domain is not None else design.dominant_domain()
        )
        if self.domain not in design.domains:
            raise ConfigError(f"unknown domain {self.domain!r}")
        self.model = model
        self.env = env if env is not None else ElectricalEnv()
        self.period_ns = design.domains[self.domain].period_ns
        self.setup_ns = setup_ns
        self.delays = (
            delays
            if delays is not None
            else DelayModel(design.netlist, design.parasitics)
        )
        self.scap = StaticScapBound(
            design, self.domain, vdd=self.env.vdd, delays=self.delays
        )
        self.sta = StaticTimingAnalyzer(
            design.netlist,
            self.delays,
            design.clock_trees[self.domain],
            self.period_ns,
            self.domain,
            setup_ns=setup_ns,
        )
        #: The miss threshold in the measured-delay domain.
        self.limit_ns = self.period_ns - setup_ns
        self._tree = design.clock_trees[self.domain]
        self._insertion: Dict[int, float] = {
            fi: self._tree.insertion_delay_ns(fi)
            for fi in self.scap.launch_time_ns
        }

    # ------------------------------------------------------------------
    # static droop bound (link 2 + 3 of the soundness chain)
    # ------------------------------------------------------------------
    def droop_bounds_v(
        self, seeds: Optional[Set[int]] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Worst-case droop bound per instance from the current bound.

        Returns ``(gate_droop, flop_droop, node_total)`` in volts —
        each entry dominates what
        :func:`~repro.pgrid.dynamic_ir.dynamic_ir_for_pattern` computes
        for any pattern whose toggling launch flops are a subset of
        *seeds* (default: every launch-capable flop).
        """
        model = self._require_model()
        netlist = self.design.netlist
        n_nodes = model.vdd_grid.n_nodes
        node_power_mw = np.zeros(n_nodes)
        flop_ids = (
            self.scap.launch_time_ns if seeds is None else seeds
        )
        if flop_ids:
            bound = self.scap.toggle_bounds(
                None if seeds is None else seeds
            )
            # The simulated STW is the last applied-transition time and
            # the first applied transition is a seed launch event, so
            # the seeds' earliest launch time floors every STW.
            floor_ns = min(
                self.scap.launch_time_ns[fi] for fi in flop_ids
            )
            energy_fj = bound * self.scap.energy_of_net_fj
            for net in np.nonzero(energy_fj)[0]:
                node = model.net_node[net]
                if node >= 0:
                    node_power_mw[node] += (
                        float(energy_fj[net]) / floor_ns * 1e-3
                    )
        # Identical ungated clock baseline to dynamic_ir_for_pattern:
        # pattern-independent, so equality (not just dominance).
        clock_window_ns = self.period_ns / 2.0
        energies = clock_buffer_energies_fj(
            self._tree, self.env.vdd, edges=1
        )
        nodes = model.clock_nodes[self.domain]
        for bi, energy in energies.items():
            node_power_mw[nodes[bi]] += energy / clock_window_ns * 1e-3
        injection = model.injection_from_node_power(
            node_power_mw, self.env.vdd
        )
        drop_vdd, drop_vss = model.solve_both(injection)
        total = drop_vdd + drop_vss
        return total[model.gate_node], total[model.flop_node], total

    def block_droop_bounds_v(
        self, seeds: Optional[Set[int]] = None
    ) -> Dict[str, float]:
        """Worst-case per-block total droop bound (volts)."""
        model = self._require_model()
        _, _, total = self.droop_bounds_v(seeds)
        return {
            block: model.worst_in_block(total, block)
            for block in self.design.blocks()
        }

    # ------------------------------------------------------------------
    # per-pattern bounds (the tentpole analysis)
    # ------------------------------------------------------------------
    def pattern_bounds(
        self,
        v1: Dict[int, int],
        index: int = 0,
        endpoints: Optional[Iterable[Union[int, str]]] = None,
    ) -> DroopBoundReport:
        """Fully static droop-derated bound for one pattern.

        One zero-delay logic pass identifies the toggling launch flops;
        the droop bound, derates and arrival bound are all seeded by
        exactly that set.  Endpoints the seeds cannot reach are
        *inactive* (their measured delay is 0 in both simulations);
        endpoints whose bound slack stays non-negative are
        *safe_static*; the rest are *at_risk* pending the derated
        re-analysis or the full re-simulation.
        """
        wanted = self._resolve_endpoints(endpoints)
        seeds = self.scap.toggling_launch_flops(v1)
        block_droops: Dict[str, float] = {}
        if not seeds:
            report = self._all_inactive(index, wanted)
        else:
            gate_droop, flop_droop, total = self.droop_bounds_v(seeds)
            model = self._require_model()
            block_droops = {
                block: model.worst_in_block(total, block)
                for block in self.design.blocks()
            }
            gate_derate = 1.0 + self.env.k_volt * np.clip(
                gate_droop, 0.0, None
            )
            flop_derate = 1.0 + self.env.k_volt * np.clip(
                flop_droop, 0.0, None
            )
            report = self._classify(
                seeds, gate_derate, flop_derate, SAFE_STATIC, index,
                wanted,
            )
        report.block_droop_bound_v = block_droops
        return report

    def derated_bounds(
        self,
        seeds: Set[int],
        gate_derate: np.ndarray,
        flop_derate: np.ndarray,
        index: int = 0,
        endpoints: Optional[Iterable[Union[int, str]]] = None,
    ) -> DroopBoundReport:
        """Bound under explicit per-instance derates (e.g. from the
        pattern's own simulated IR field via
        :func:`~repro.sim.sta.derates_from_ir`).

        Sound against the scaled re-simulation of the *same* IR field:
        the zero-delay launch set is delay-independent, so the scaled
        simulation launches exactly *seeds*, and a static worst-arrival
        sweep with the identical derated delays dominates it.
        """
        wanted = self._resolve_endpoints(endpoints)
        seed_set = set(seeds)
        if not seed_set:
            return self._all_inactive(index, wanted)
        return self._classify(
            seed_set, gate_derate, flop_derate, SAFE_DERATED, index,
            wanted,
        )

    # ------------------------------------------------------------------
    def _classify(
        self,
        seeds: Set[int],
        gate_derate: np.ndarray,
        flop_derate: np.ndarray,
        safe_label: str,
        index: int,
        wanted: Optional[Set[int]],
    ) -> DroopBoundReport:
        unknown = seeds - set(self.scap.launch_time_ns)
        if unknown:
            raise ConfigError(
                f"seed flops {sorted(unknown)} are not launch-capable "
                f"in domain {self.domain!r}"
            )
        sta_report = self.sta.analyze(
            gate_derate=gate_derate,
            flop_derate=flop_derate,
            launch_flops=sorted(seeds),
        )
        reached = {e.flop: e for e in sta_report.endpoints}
        netlist = self.design.netlist
        endpoints: Dict[int, EndpointBound] = {}
        for fi in self.scap.launch_time_ns:
            if wanted is not None and fi not in wanted:
                continue
            timing = reached.get(fi)
            if timing is None:
                # No structural path from any seed: the event simulator
                # (nominal or scaled) can never apply a transition at
                # this D pin, so its measured delay is exactly 0.
                endpoints[fi] = EndpointBound(
                    flop=fi,
                    flop_name=netlist.flops[fi].name,
                    measured_bound_ns=0.0,
                    limit_ns=self.limit_ns,
                    classification=INACTIVE,
                )
                continue
            measured = timing.arrival_ns - self._insertion[fi]
            endpoints[fi] = EndpointBound(
                flop=fi,
                flop_name=netlist.flops[fi].name,
                measured_bound_ns=measured,
                limit_ns=self.limit_ns,
                classification=(
                    safe_label if measured <= self.limit_ns else AT_RISK
                ),
            )
        return DroopBoundReport(
            domain=self.domain,
            period_ns=self.period_ns,
            pattern_index=index,
            endpoints=endpoints,
            seeds=set(seeds),
        )

    def _all_inactive(
        self, index: int, wanted: Optional[Set[int]]
    ) -> DroopBoundReport:
        netlist = self.design.netlist
        return DroopBoundReport(
            domain=self.domain,
            period_ns=self.period_ns,
            pattern_index=index,
            endpoints={
                fi: EndpointBound(
                    flop=fi,
                    flop_name=netlist.flops[fi].name,
                    measured_bound_ns=0.0,
                    limit_ns=self.limit_ns,
                    classification=INACTIVE,
                )
                for fi in self.scap.launch_time_ns
                if wanted is None or fi in wanted
            },
            seeds=set(),
        )

    # ------------------------------------------------------------------
    def _resolve_endpoints(
        self, endpoints: Optional[Iterable[Union[int, str]]]
    ) -> Optional[Set[int]]:
        """Validate an explicit endpoint selection (ids or flop names).

        ``None`` means every launch-capable endpoint; an empty or
        unknown selection is a caller bug and fails with a one-line
        error instead of silently bounding nothing.
        """
        if endpoints is None:
            return None
        requested = list(endpoints)
        if not requested:
            raise ConfigError(
                "empty endpoint selection — pass None to bound every "
                "endpoint of the domain"
            )
        netlist = self.design.netlist
        by_name = {f.name: fi for fi, f in enumerate(netlist.flops)}
        resolved: Set[int] = set()
        unknown: List[str] = []
        for item in requested:
            fi = by_name.get(item) if isinstance(item, str) else item
            if fi is None or not isinstance(fi, int):
                unknown.append(repr(item))
            elif fi not in self.scap.launch_time_ns:
                unknown.append(
                    f"{item!r} (not a launch-capable endpoint of "
                    f"domain {self.domain!r})"
                )
            else:
                resolved.add(fi)
        if unknown:
            raise ConfigError(
                f"unknown endpoint(s): {', '.join(sorted(unknown))}"
            )
        return resolved

    def _require_model(self) -> "GridModel":
        if self.model is None:
            raise ConfigError(
                "the static droop bound needs a power-grid model — "
                "construct DroopBoundAnalyzer(model=GridModel...) or "
                "use derated_bounds() with an explicit IR field"
            )
        return self.model
