"""Pattern-generation flows: conventional baseline and the paper's
staged noise-aware procedure (Section 3.1).

**Conventional**: one ATPG run over the whole fault universe with
random fill — maximum fortuitous detection, maximum switching activity.

**Noise-aware (staged)**: per dominant clock domain, split the ATPG into
steps that target fault subsets block by block — the quiet peripheral
blocks first (B1–B4), then B6, and the power-dense central block B5
last — with ``fill-0`` for every don't-care cell.  While a block is not
targeted, its scan cells are almost all don't-cares and fill-0 holds it
quiet; the big block's activity is therefore confined to the tail of
the pattern set and its per-pattern SCAP stays under the threshold for
all but a handful of patterns (Figure 6), at the cost of a small
pattern-count increase (Figure 4).
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..atpg.engine import AtpgEngine, AtpgResult
from ..atpg.faults import TransitionFault, build_fault_universe, collapse_faults
from ..atpg.fsim import FaultSimulator, first_detection_index
from ..atpg.patterns import PatternSet
from ..context import RunContext, use_run_context
from ..errors import ConfigError, DrcError, PowerGridError
from ..obs import AnyTelemetry, current_telemetry, use_telemetry
from ..perf.resilient import collect_reports
from ..reporting.checkpoint import CheckpointStore, config_fingerprint
from ..reporting.runreport import (
    RUN_COMPLETED,
    RUN_FAILED,
    RUN_PARTIAL,
    RunReport,
)
from ..soc.design import SocDesign

#: The case study's staging: quiet blocks, then B6, then B5 alone.
STAGE_PLAN_TURBO_EAGLE: Tuple[Tuple[str, ...], ...] = (
    ("B1", "B2", "B3", "B4"),
    ("B6",),
    ("B5",),
)

def stage_key(index: int, blocks: Sequence[str]) -> str:
    """Stable stage identifier used as the checkpoint (and shard) key."""
    return f"stage{index}_{'+'.join(blocks)}"


def flow_stage_names(
    stage_plan: Sequence[Sequence[str]] = STAGE_PLAN_TURBO_EAGLE,
) -> List[str]:
    """The stage/checkpoint keys a staged flow over *stage_plan* uses.

    This is the shard-extraction hook for :mod:`repro.service`: each
    name is one independently schedulable unit of the flow, and because
    the names are also the :class:`CheckpointStore` keys, a shard
    executed by any process resumes its predecessors bit-identically.
    """
    return [stage_key(i, tuple(s)) for i, s in enumerate(stage_plan)]


#: DRC families the flow gate runs: everything static and cheap.  The
#: power family needs thresholds (grid calibration) and never gates —
#: it is available via ``CaseStudy.drc_report()`` and ``repro drc``.
DRC_GATE_FAMILIES: Tuple[str, ...] = ("structural", "scan", "clocking")


def run_drc_gate(
    design: SocDesign,
    waivers=None,
    run_report: Optional[RunReport] = None,
):
    """Run the static DRC gate a flow performs before any generation.

    *waivers* is a :class:`~repro.drc.WaiverSet` or a path to a waiver
    JSON file.  The resulting report summary is recorded on
    *run_report* (when given); unwaived ERROR violations raise
    :class:`~repro.errors.DrcError` carrying the full report.

    Returns the :class:`~repro.drc.DrcReport` on a clean (or waived)
    design.
    """
    from ..drc import DrcContext, load_waivers, run_drc

    if isinstance(waivers, str):
        waivers = load_waivers(waivers)
    with current_telemetry().span("flow.drc_gate", design=design.name):
        report = run_drc(
            DrcContext.for_design(design),
            waivers=waivers,
            families=DRC_GATE_FAMILIES,
        )
    if run_report is not None:
        run_report.drc = report.summary()
    gating = report.gating_violations("error")
    if gating:
        raise DrcError(
            f"design {design.name!r} failed DRC with {len(gating)} "
            f"unwaived ERROR violation(s):\n" + report.format_text(limit=20),
            report=report,
        )
    return report


@dataclass
class FlowResult:
    """Outcome of one complete generation flow."""

    name: str
    domain: str
    fill: str
    pattern_set: PatternSet
    step_results: List[AtpgResult]
    step_blocks: List[Tuple[str, ...]]
    #: Pattern index where each step begins.
    step_boundaries: List[int] = field(default_factory=list)
    #: Faults detected by *earlier-step* patterns during cross-step
    #: fault grading (fault -> first detecting pattern index).
    cross_detected: Dict[TransitionFault, int] = field(default_factory=dict)

    @property
    def n_patterns(self) -> int:
        """Total patterns across all steps."""
        return len(self.pattern_set)

    @property
    def total_faults(self) -> int:
        """Size of the flow's whole (collapsed) fault universe."""
        return sum(r.total_faults for r in self.step_results) + len(
            self.cross_detected
        )

    @property
    def detected_faults(self) -> int:
        """Faults detected by the flow (engine + cross-step grading)."""
        return sum(len(r.detected) for r in self.step_results) + len(
            self.cross_detected
        )

    @property
    def untestable_faults(self) -> int:
        """Faults proven untestable across all steps."""
        return sum(len(r.untestable) for r in self.step_results)

    @property
    def test_coverage(self) -> float:
        """Detected / (total - untestable), TetraMAX-style."""
        denom = self.total_faults - self.untestable_faults
        return self.detected_faults / max(1, denom)

    def coverage_curve(self) -> List[Tuple[int, float]]:
        """Cumulative test coverage vs pattern index across all steps.

        This is the Figure 4 series: x = pattern count, y = coverage of
        the flow's whole fault universe.
        """
        per_pattern = np.zeros(self.n_patterns, dtype=int)
        for result in self.step_results:
            for first in result.detected.values():
                per_pattern[first] += 1
        for first in self.cross_detected.values():
            per_pattern[first] += 1
        denom = max(1, self.total_faults - self.untestable_faults)
        cum = np.cumsum(per_pattern)
        return [(i, cum[i] / denom) for i in range(self.n_patterns)]


class ConventionalFlow:
    """The baseline: whole-design ATPG with random fill."""

    def __init__(
        self,
        design: SocDesign,
        domain: Optional[str] = None,
        fill: str = "random",
        seed: int = 1,
        n_workers: Union[int, str, None] = 1,
        **engine_kwargs,
    ):
        self.design = design
        self.domain = domain if domain is not None else design.dominant_domain()
        self.fill = fill
        self.n_workers = n_workers
        self.engine = AtpgEngine(
            design.netlist,
            self.domain,
            scan=design.scan,
            seed=seed,
            n_workers=n_workers,
            **engine_kwargs,
        )

    def run(self, max_patterns: Optional[int] = None) -> FlowResult:
        result = self.engine.run(fill=self.fill, max_patterns=max_patterns)
        return FlowResult(
            name="conventional",
            domain=self.domain,
            fill=self.fill,
            pattern_set=result.pattern_set,
            step_results=[result],
            step_blocks=[tuple(self.design.blocks())],
            step_boundaries=[0],
        )


class NoiseAwarePatternGenerator:
    """The paper's staged, fill-0, per-block pattern generation."""

    def __init__(
        self,
        design: SocDesign,
        domain: Optional[str] = None,
        stage_plan: Sequence[Sequence[str]] = STAGE_PLAN_TURBO_EAGLE,
        fill: str = "0",
        seed: int = 1,
        isolate_untargeted: bool = False,
        power_critical_blocks: Sequence[str] = ("B5",),
        n_workers: Union[int, str, None] = 1,
        grade_lane_width: int = 64,
        **engine_kwargs,
    ):
        self.design = design
        self.domain = domain if domain is not None else design.dominant_domain()
        self.fill = fill
        self.n_workers = n_workers
        self.grade_lane_width = grade_lane_width
        self.isolate_untargeted = isolate_untargeted
        self.power_critical_blocks = tuple(power_critical_blocks)
        self.stage_plan = [tuple(s) for s in stage_plan]
        if not self.stage_plan:
            raise ConfigError("stage plan must have at least one step")
        known = set(design.blocks())
        for step in self.stage_plan:
            unknown = set(step) - known
            if unknown:
                raise ConfigError(f"stage plan names unknown blocks {unknown}")
        self.engine = AtpgEngine(
            design.netlist,
            self.domain,
            scan=design.scan,
            seed=seed,
            n_workers=n_workers,
            **engine_kwargs,
        )

    def stage_name(self, index: int) -> str:
        """Stable stage identifier (also the checkpoint key)."""
        return stage_key(index, self.stage_plan[index])

    def run(
        self,
        max_patterns: Optional[int] = None,
        checkpoint: Optional[CheckpointStore] = None,
        run_report: Optional[RunReport] = None,
        stop_after_stage: Optional[int] = None,
    ) -> FlowResult:
        """Generate the staged pattern set.

        With a *checkpoint* store, every completed stage persists its
        patterns, detection words, cross-step grading and post-stage
        RNG state; a later call over the same store loads those stages
        and recomputes nothing, producing a pattern set bit-identical
        to an uninterrupted run.  (The store's fingerprint must cover
        the flow configuration — :func:`run_noise_tolerant_flow` wires
        that up.)  *run_report* collects per-stage records and the
        execution layer's failure/retry log; *stop_after_stage* ends
        the run after that many leading stages (a deliberate
        interruption, used to exercise resume paths).
        """
        tel = current_telemetry()
        combined = PatternSet(self.domain, fill=self.fill)
        step_results: List[AtpgResult] = []
        boundaries: List[int] = []
        cross_detected: Dict[TransitionFault, int] = {}
        fsim = FaultSimulator(self.design.netlist, self.domain)
        next_index = 0
        stopped = False

        for idx, step in enumerate(self.stage_plan):
            name = self.stage_name(idx)
            if stop_after_stage is not None and idx >= stop_after_stage:
                stopped = True
                if run_report is not None:
                    for later in range(idx, len(self.stage_plan)):
                        run_report.record_stage(
                            self.stage_name(later), "pending"
                        )
                break

            payload = (
                checkpoint.try_load(name) if checkpoint is not None else None
            )
            if payload is not None:
                tel.count("flow.stages_resumed")
                tel.log.info("stage %s loaded from checkpoint", name)
                for pattern in payload["patterns"]:
                    combined.append(pattern)
                cross_detected.update(payload["graded"])
                boundaries.append(payload["boundary"])
                step_results.append(payload["result"])
                next_index = payload["next_index"]
                # The engine RNG advanced while generating this stage;
                # replaying its post-stage state keeps every later
                # stage bit-identical to an uninterrupted run.
                if payload.get("rng_state") is not None:
                    self.engine.rng.bit_generator.state = payload["rng_state"]
                if run_report is not None:
                    run_report.record_stage(
                        name, "completed", from_checkpoint=True,
                        detail={"patterns": len(payload["patterns"])},
                    )
                continue

            stage_started = time.time()
            try:
                with tel.span("atpg.stage", stage=name, blocks=list(step)), \
                        tel.profile_stage(name), \
                        collect_reports() as exec_reports:
                    outcome = self._run_stage(
                        fsim, step, combined, next_index, max_patterns
                    )
            except Exception as exc:
                if run_report is not None:
                    record = run_report.record_stage(
                        name, "failed",
                        detail={
                            "error": repr(exc),
                            "elapsed_s": round(
                                time.time() - stage_started, 6
                            ),
                        },
                    )
                    for later in range(idx + 1, len(self.stage_plan)):
                        run_report.record_stage(
                            self.stage_name(later), "pending"
                        )
                    for exec_report in exec_reports:
                        run_report.absorb_execution_report(name, exec_report)
                    record.detail["exec_reports"] = len(exec_reports)
                raise

            graded, result, boundary = outcome
            cross_detected.update(graded)
            if result is None:  # pattern budget exhausted
                break
            for pattern in result.pattern_set:
                combined.append(pattern)
            next_index = len(combined)
            boundaries.append(boundary)
            step_results.append(result)

            if checkpoint is not None:
                checkpoint.save(
                    name,
                    {
                        "patterns": list(result.pattern_set),
                        "result": result,
                        "graded": graded,
                        "boundary": boundary,
                        "next_index": next_index,
                        "rng_state": self.engine.rng.bit_generator.state,
                    },
                    meta={
                        "blocks": list(step),
                        "patterns": len(result.pattern_set),
                        "detected": len(result.detected),
                    },
                )
            if run_report is not None:
                run_report.record_stage(
                    name, "completed",
                    detail={
                        "blocks": list(step),
                        "patterns": len(result.pattern_set),
                        "detected": len(result.detected),
                        "cross_detected": len(graded),
                        "elapsed_s": round(
                            time.time() - stage_started, 6
                        ),
                    },
                )
                for exec_report in exec_reports:
                    run_report.absorb_execution_report(name, exec_report)

        if run_report is not None and stopped:
            run_report.status = RUN_PARTIAL

        return FlowResult(
            name="noise_aware_staged",
            domain=self.domain,
            fill=self.fill,
            pattern_set=combined,
            step_results=step_results,
            step_blocks=list(self.stage_plan[: len(step_results)]),
            step_boundaries=boundaries[: len(step_results)],
            cross_detected=cross_detected,
        )

    def _run_stage(
        self,
        fsim: FaultSimulator,
        step: Tuple[str, ...],
        combined: PatternSet,
        next_index: int,
        max_patterns: Optional[int],
    ) -> Tuple[Dict[TransitionFault, int], Optional[AtpgResult], int]:
        """One stage: grade existing patterns, target the rest.

        Returns ``(cross-graded faults, ATPG result, stage boundary)``;
        the result is ``None`` when the pattern budget is already
        exhausted (the grading still counts toward cross-detection,
        matching the pre-checkpoint behaviour).
        """
        netlist = self.design.netlist
        universe = build_fault_universe(netlist, blocks=step)
        reps, _ = collapse_faults(netlist, universe)
        targets: List[TransitionFault] = list(reps)
        graded: Dict[TransitionFault, int] = {}
        # Fault-grade the patterns generated so far against this
        # step's targets (standard practice before a follow-up ATPG
        # run): anything fortuitously covered is not re-targeted.
        if combined.patterns and targets:
            graded = _grade_existing(
                fsim, combined, targets,
                lane_width=self.grade_lane_width,
                n_workers=self.n_workers,
            )
            targets = [f for f in targets if f not in graded]
        budget = None
        if max_patterns is not None:
            budget = max(0, max_patterns - len(combined))
            if budget == 0:
                return graded, None, next_index
        forced = None
        if self.isolate_untargeted:
            # The isolation DFT the paper wished it had: hold every
            # untargeted block's load-enables at 0 as an ATPG
            # constraint, so not even care bits can wake them.
            forced = {}
            for block in self.design.blocks():
                if block in step:
                    continue
                for fi in self.design.enable_flops_in_block(block):
                    forced[fi] = 0
        block_fill = None
        if self.fill == "per-block":
            # The paper's "more ideal scenario": random fill inside
            # the blocks being targeted (fortuitous detection), 0
            # everywhere else (quiet).  Power-critical blocks stay
            # on fill-0 even while targeted.
            block_fill = {
                block: "random"
                for block in step
                if block not in self.power_critical_blocks
            }
        result = self.engine.run(
            faults=targets,
            fill=self.fill,
            max_patterns=budget,
            start_index=next_index,
            forced_bits=forced,
            block_fill=block_fill,
        )
        return graded, result, next_index


def run_noise_tolerant_flow(
    design: SocDesign,
    domain: Optional[str] = None,
    *,
    checkpoint_dir: Optional[str] = None,
    resume: bool = True,
    max_patterns: Optional[int] = None,
    stop_after_stage: Optional[int] = None,
    strict: bool = False,
    report_path: Optional[str] = None,
    drc: bool = True,
    drc_waivers=None,
    telemetry: Optional[AnyTelemetry] = None,
    context: Optional[RunContext] = None,
    schedule_budget_mw: Optional[float] = None,
    schedule_strategy: str = "binpack",
    schedule_tam_width: Optional[int] = None,
    timing_prescreen: bool = False,
    timing_max_patterns: Optional[int] = None,
    **generator_kwargs,
) -> Tuple[Optional[FlowResult], RunReport]:
    """The staged noise-aware flow as a fault-tolerant, resumable run.

    This is the production entry point around
    :class:`NoiseAwarePatternGenerator`: the design first passes the
    static DRC gate (see :func:`run_drc_gate`; disable with
    ``drc=False``, excuse reviewed findings with *drc_waivers* — a
    :class:`~repro.drc.WaiverSet` or waiver-file path), per-stage
    results persist to *checkpoint_dir* (guarded by a fingerprint of
    the design + flow configuration, so a stale directory is never
    resumed), a rerun skips completed stages, and an unrecoverable
    error returns a structured partial
    :class:`~repro.reporting.runreport.RunReport` instead of a bare
    traceback.

    Returns ``(flow_result, run_report)``.  ``flow_result`` is ``None``
    when the run failed before producing a usable pattern set; a
    deliberate *stop_after_stage* interruption returns the partial
    pattern set with ``report.status == "partial"``.  With
    ``strict=True`` the underlying exception propagates after the
    report is finalised (and written to *report_path*, if given).  A
    DRC failure always raises :class:`~repro.errors.DrcError` (after
    writing the report): generating patterns on a netlist that fails
    its design rules would waste every downstream stage.

    *context* (a :class:`~repro.context.RunContext`) scopes the whole
    session configuration — telemetry, execution policy, dispatch
    policy and kernel cache — over the run.  The legacy *telemetry*
    kwarg is deprecated sugar for ``context=RunContext(telemetry=...)``
    (a :class:`DeprecationWarning` is emitted); either way ``None``
    telemetry runs with the null facade: no signals, bit-identical
    results, and the telemetry snapshot lands in ``report.telemetry``.

    With *schedule_budget_mw* set, a successful generation run is
    followed by a SOC test-scheduling stage: per-block test powers come
    from the sound :class:`~repro.power.static_bound.StaticScapBound`
    chip-wide bounds, times from wrapper partitioning of the flow's
    per-block pattern counts, and the *schedule_strategy* scheduler
    (``"binpack"`` by default, see
    :func:`~repro.core.scheduling.available_schedulers`) packs them
    under the power envelope and the optional *schedule_tam_width*.
    The validated schedule digest lands in ``report.schedule``; an
    infeasible budget records a failed stage (raising only under
    ``strict=True``).

    With ``timing_prescreen=True`` a successful generation run is
    followed by the noise-aware static timing pre-screen
    (:func:`~repro.timing.prescreen.prescreen_pattern_set`): every
    generated pattern's endpoints are classified inactive / provably
    safe / at-risk against the droop-derated delay bound, only at-risk
    ones pay the IR-scaled re-simulation, and the digest — counts,
    pruned-endpoint fraction, cycle misses and the empirical soundness
    check — lands in ``report.timing``.  *timing_max_patterns* caps how
    many patterns the stage screens.
    """
    ctx = context if context is not None else RunContext()
    if telemetry is not None:
        warnings.warn(
            "telemetry= is deprecated; pass "
            "context=RunContext(telemetry=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if ctx.telemetry is None:
            ctx = ctx.with_telemetry(telemetry)
    # The non-telemetry knobs scope ambiently; telemetry keeps the
    # historical contract that ``None`` *forces* the null facade (it
    # does not inherit), so it is scoped explicitly.
    with use_run_context(dataclasses.replace(ctx, telemetry=None)), \
            use_telemetry(ctx.telemetry) as tel:
        generator = NoiseAwarePatternGenerator(
            design, domain, **generator_kwargs
        )
        report = RunReport(
            flow="noise_aware_staged", checkpoint_dir=checkpoint_dir
        )

        def finalize() -> None:
            report.telemetry = tel.snapshot()

        with tel.span(
            "flow.run", flow="noise_aware_staged", design=design.name
        ):
            tel.log.info(
                "flow start: design=%s domain=%s", design.name,
                generator.domain,
            )
            if drc:
                try:
                    run_drc_gate(
                        design, waivers=drc_waivers, run_report=report
                    )
                except DrcError:
                    report.status = RUN_FAILED
                    report.error = "DrcError: unwaived ERROR violations"
                    finalize()
                    if report_path is not None:
                        report.save(report_path)
                    raise
            checkpoint = None
            if checkpoint_dir is not None:
                netlist = design.netlist
                fingerprint = config_fingerprint(
                    design=(
                        netlist.name, netlist.n_nets, netlist.n_gates,
                        netlist.n_flops,
                    ),
                    domain=generator.domain,
                    stage_plan=tuple(generator.stage_plan),
                    fill=generator.fill,
                    isolate=generator.isolate_untargeted,
                    power_critical=generator.power_critical_blocks,
                    max_patterns=max_patterns,
                    engine_seed=generator.engine.rng.bit_generator.state[
                        "state"
                    ],
                )
                checkpoint = CheckpointStore(checkpoint_dir, fingerprint)
                if not resume:
                    checkpoint.clear()

            flow_result: Optional[FlowResult] = None
            try:
                flow_result = generator.run(
                    max_patterns=max_patterns,
                    checkpoint=checkpoint,
                    run_report=report,
                    stop_after_stage=stop_after_stage,
                )
                if report.status != RUN_PARTIAL:
                    report.status = RUN_COMPLETED
            except Exception as exc:
                report.status = (
                    RUN_PARTIAL if report.completed_stages() else RUN_FAILED
                )
                report.error = repr(exc)
                tel.log.error("flow %s: %r", report.status, exc)
                finalize()
                if report_path is not None:
                    report.save(report_path)
                if strict:
                    raise
                return None, report

            if schedule_budget_mw is not None:
                stage_started = time.time()
                try:
                    with tel.span(
                        "flow.schedule", strategy=schedule_strategy
                    ):
                        schedule = _schedule_from_flow(
                            design, generator.domain, flow_result,
                            budget_mw=schedule_budget_mw,
                            strategy=schedule_strategy,
                            tam_width=schedule_tam_width,
                        )
                except ConfigError as exc:
                    report.schedule = {
                        "error": str(exc),
                        "strategy": schedule_strategy,
                        "power_budget_mw": schedule_budget_mw,
                    }
                    report.record_stage(
                        "schedule", "failed", detail={"error": repr(exc)}
                    )
                    report.status = RUN_PARTIAL
                    tel.log.error("schedule stage failed: %s", exc)
                    if strict:
                        finalize()
                        if report_path is not None:
                            report.save(report_path)
                        raise
                else:
                    report.schedule = schedule.summary()
                    report.record_stage(
                        "schedule", "completed",
                        detail={
                            "strategy": schedule.strategy,
                            "makespan_us": schedule.makespan_us,
                            "elapsed_s": round(
                                time.time() - stage_started, 6
                            ),
                        },
                    )

            if timing_prescreen:
                stage_started = time.time()
                try:
                    with tel.span("flow.timing", domain=generator.domain):
                        timing = _timing_from_flow(
                            design, generator.domain, flow_result,
                            max_patterns=timing_max_patterns,
                        )
                except (ConfigError, PowerGridError) as exc:
                    report.timing = {"error": str(exc)}
                    report.record_stage(
                        "timing", "failed", detail={"error": repr(exc)}
                    )
                    report.status = RUN_PARTIAL
                    tel.log.error("timing stage failed: %s", exc)
                    if strict:
                        finalize()
                        if report_path is not None:
                            report.save(report_path)
                        raise
                else:
                    report.timing = timing.to_dict()
                    report.record_stage(
                        "timing", "completed",
                        detail={
                            "patterns": timing.n_patterns,
                            "pruned_endpoint_fraction": round(
                                timing.pruned_endpoint_fraction, 6
                            ),
                            "at_risk": timing.endpoint_counts["at_risk"],
                            "soundness_violations":
                                timing.soundness_violations,
                            "elapsed_s": round(
                                time.time() - stage_started, 6
                            ),
                        },
                    )
        tel.log.info(
            "flow %s: %d pattern(s)", report.status,
            flow_result.n_patterns if flow_result is not None else 0,
        )
        finalize()
        if report_path is not None:
            report.save(report_path)
        return flow_result, report


def _schedule_from_flow(
    design: SocDesign,
    domain: str,
    flow_result: FlowResult,
    *,
    budget_mw: float,
    strategy: str = "binpack",
    tam_width: Optional[int] = None,
):
    """Power/TAM-constrained test schedule for a finished flow.

    Block test powers are the chip-wide
    :class:`~repro.power.static_bound.StaticScapBound` bounds (sound:
    a schedule feasible under them is feasible under the true SCAP),
    times come from wrapper partitioning of the flow's per-block
    pattern counts, and the *strategy* scheduler packs the candidate
    rectangles.  The returned schedule has been ``validate()``-ed.
    """
    from ..power.static_bound import StaticScapBound
    from .scheduling import ScheduleBudget, get_scheduler, specs_from_flow

    bound = StaticScapBound(design, domain)
    powers = bound.test_power_bounds_mw()
    specs = specs_from_flow(design, flow_result, powers)
    width = tam_width if tam_width is not None else design.tam_width
    schedule = get_scheduler(strategy).schedule(
        specs, ScheduleBudget(power_mw=budget_mw, tam_width=width)
    )
    schedule.validate()
    return schedule


def _timing_from_flow(
    design: SocDesign,
    domain: str,
    flow_result: FlowResult,
    *,
    max_patterns: Optional[int] = None,
):
    """Noise-aware timing pre-screen of a finished flow's patterns.

    Calibrates a power grid for the design, then classifies every
    pattern's endpoints against the droop-derated delay bound —
    provably safe ones skip the IR-scaled re-simulation entirely (see
    :mod:`repro.timing.prescreen`).
    """
    from ..pgrid.grid import GridModel
    from ..power.calculator import ScapCalculator
    from ..timing.prescreen import prescreen_pattern_set

    model = GridModel.calibrated(design)
    calculator = ScapCalculator(design, domain)
    return prescreen_pattern_set(
        calculator,
        model,
        flow_result.pattern_set,
        max_patterns=max_patterns,
    )


def _grade_existing(
    fsim: FaultSimulator,
    pattern_set: PatternSet,
    targets: Sequence[TransitionFault],
    lane_width: int = 64,
    n_workers: Union[int, str, None] = 1,
) -> Dict[TransitionFault, int]:
    """Which of *targets* the existing patterns already detect.

    One multi-word :meth:`~repro.atpg.fsim.FaultSimulator.run_batch`
    call with between-lane fault dropping (a dropped fault's later
    lanes are never simulated) and optional fault-partition workers.
    """
    matrix = pattern_set.as_matrix()
    with current_telemetry().span(
        "flow.grade_existing",
        n_patterns=matrix.shape[0],
        n_targets=len(targets),
    ):
        words = fsim.run_batch(
            matrix, targets, lane_width=lane_width, drop=True,
            n_workers=n_workers,
        )
    return {
        fault: first_detection_index(word) for fault, word in words.items()
    }
