"""Full-chip, all-domain pattern generation.

The paper's procedure: "this procedure [staged fill-0] is only applied
for the dominant clock domain (clka).  For the remaining clock domains,
the ATPG is similar in both the methods."  This module runs exactly
that: the noise-aware staged flow on the dominant domain, conventional
per-domain runs everywhere else, with cross-domain fault grading so a
fault detectable in several domains is only targeted once.

Faults are assigned to the domain whose capture flops can observe them;
the dominant domain goes first (it covers every block), and each later
domain targets only what is still undetected and observable there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..atpg.engine import AtpgEngine, AtpgResult
from ..atpg.faults import TransitionFault, build_fault_universe, collapse_faults
from ..atpg.fsim import FaultSimulator
from ..atpg.patterns import PatternSet
from ..errors import ConfigError
from ..soc.design import SocDesign
from .flow import ConventionalFlow, FlowResult, NoiseAwarePatternGenerator


@dataclass
class DomainOutcome:
    """One domain's contribution to the full-chip run."""

    domain: str
    flow_name: str
    pattern_set: PatternSet
    detected: int
    targeted: int
    untestable: int

    @property
    def coverage(self) -> float:
        """Detected over targetable (non-untestable) faults."""
        denom = self.targeted - self.untestable
        return self.detected / max(1, denom)


@dataclass
class FullChipResult:
    """All domains together."""

    outcomes: List[DomainOutcome] = field(default_factory=list)

    @property
    def total_patterns(self) -> int:
        """Patterns across every domain."""
        return sum(len(o.pattern_set) for o in self.outcomes)

    @property
    def total_detected(self) -> int:
        """Faults detected chip-wide (each counted once)."""
        return sum(o.detected for o in self.outcomes)

    def by_domain(self) -> Dict[str, DomainOutcome]:
        """Outcomes keyed by clock domain."""
        return {o.domain: o for o in self.outcomes}


def run_full_chip(
    design: SocDesign,
    noise_aware_dominant: bool = True,
    seed: int = 1,
    backtrack_limit: int = 60,
    max_patterns_per_domain: Optional[int] = None,
) -> FullChipResult:
    """Generate patterns for every clock domain of the design.

    Parameters
    ----------
    design:
        The SOC (scan inserted).
    noise_aware_dominant:
        True (paper's new method): staged fill-0 on the dominant domain.
        False (baseline): conventional random fill there too.
    """
    if design.scan is None:
        raise ConfigError("design needs scan chains")
    dominant = design.dominant_domain()
    result = FullChipResult()

    # Remaining-fault bookkeeping across domains.
    universe, _ = collapse_faults(
        design.netlist, build_fault_universe(design.netlist)
    )
    remaining = set(universe)

    # --- dominant domain -------------------------------------------------
    if noise_aware_dominant:
        flow = NoiseAwarePatternGenerator(
            design, domain=dominant, seed=seed,
            backtrack_limit=backtrack_limit,
        ).run(max_patterns=max_patterns_per_domain)
    else:
        flow = ConventionalFlow(
            design, domain=dominant, seed=seed,
            backtrack_limit=backtrack_limit,
        ).run(max_patterns=max_patterns_per_domain)
    detected = _flow_detected(flow)
    remaining -= detected
    result.outcomes.append(
        DomainOutcome(
            domain=dominant,
            flow_name=flow.name,
            pattern_set=flow.pattern_set,
            detected=len(detected),
            targeted=flow.total_faults,
            untestable=flow.untestable_faults,
        )
    )

    # --- remaining domains: conventional per-domain runs ------------------
    ordered = sorted(
        (d for d in design.domains if d != dominant),
        key=lambda d: -len(design.flops_in_domain(d)),
    )
    for domain in ordered:
        if not design.flops_in_domain(domain):
            continue
        # Target only faults still undetected; the engine's own
        # observability prune drops what this domain cannot capture.
        targets = [f for f in universe if f in remaining]
        if not targets:
            break
        engine = AtpgEngine(
            design.netlist, domain, scan=design.scan, seed=seed,
            backtrack_limit=backtrack_limit,
        )
        run = engine.run(
            faults=targets,
            fill="random",
            max_patterns=max_patterns_per_domain,
        )
        remaining -= set(run.detected)
        result.outcomes.append(
            DomainOutcome(
                domain=domain,
                flow_name="conventional",
                pattern_set=run.pattern_set,
                detected=len(run.detected),
                targeted=run.total_faults,
                untestable=len(run.untestable),
            )
        )
    return result


def _flow_detected(flow: FlowResult) -> set:
    detected = set(flow.cross_detected)
    for step in flow.step_results:
        detected.update(step.detected)
    return detected
