"""Post-generation repair of supply-noise-violating patterns.

The paper's flow *generates* low-noise patterns; its reference [18]
(Kokrady & Ravikumar) instead *verifies* existing vectors and flags the
failing ones.  This module closes the loop between the two: given a
screened pattern set, each violating pattern is repaired by re-filling
its don't-care bits with 0 — the ATPG care bits (and thus the targeted
detections) are untouched, only the random filler that caused the extra
switching is removed.

Repair can cost fortuitous detections (the random filler was detecting
unrelated faults), so :func:`repair_pattern_set` re-grades coverage and
reports the loss; a follow-up top-up ATPG run can then re-target the
lost faults with fill-0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..atpg.fill import apply_fill
from ..atpg.fsim import FaultSimulator
from ..atpg.patterns import Pattern, PatternSet
from ..power.calculator import ScapCalculator
from ..power.scap import PatternPowerProfile
from .validation import ValidationReport, validate_pattern_set


@dataclass
class RepairOutcome:
    """Result of repairing one screened pattern set."""

    repaired_set: PatternSet
    repaired_patterns: List[int]
    unrepairable_patterns: List[int]
    violations_before: int
    violations_after: int
    faults_before: int
    faults_after: int

    @property
    def fault_loss(self) -> int:
        """Fortuitous detections lost to the quieter filler."""
        """Fortuitous detections lost to the quieter filler."""
        return self.faults_before - self.faults_after

    @property
    def repair_rate(self) -> float:
        """Fraction of violators fixed by re-filling."""
        total = len(self.repaired_patterns) + len(self.unrepairable_patterns)
        if total == 0:
            return 1.0
        return len(self.repaired_patterns) / total


def repair_pattern_set(
    calculator: ScapCalculator,
    pattern_set: PatternSet,
    thresholds_mw: Dict[str, float],
    fsim: Optional[FaultSimulator] = None,
    faults: Optional[Sequence] = None,
    report: Optional[ValidationReport] = None,
) -> RepairOutcome:
    """Re-fill every violating pattern's don't-cares with 0.

    Parameters
    ----------
    calculator:
        SCAP calculator (screening engine).
    pattern_set:
        The screened set (any fill).
    thresholds_mw:
        Per-block SCAP limits.
    fsim / faults:
        When both given, fault coverage is re-graded before and after so
        the outcome reports the fortuitous-detection loss.
    report:
        Pre-computed screening of *pattern_set* (recomputed if omitted).
    """
    if report is None:
        report = validate_pattern_set(calculator, pattern_set, thresholds_mw)
    violating = set(report.violating_patterns())

    n_flops = pattern_set[0].n_flops if len(pattern_set) else 0
    repaired = PatternSet(pattern_set.domain, fill=pattern_set.fill)
    repaired_ids: List[int] = []
    unrepairable_ids: List[int] = []

    for i, pattern in enumerate(pattern_set):
        if i not in violating:
            repaired.append(pattern)
            continue
        cube = {
            fi: int(pattern.v1[fi])
            for fi in range(n_flops)
            if pattern.care[fi]
        }
        quiet_v1 = apply_fill(cube, n_flops, "0")
        candidate = Pattern(
            index=pattern.index,
            v1=quiet_v1,
            care=pattern.care,
            domain=pattern.domain,
            fill="0(repaired)",
            targeted_faults=list(pattern.targeted_faults),
        )
        profile = calculator.profile_pattern(candidate)
        if _violates(profile, thresholds_mw):
            unrepairable_ids.append(i)
            repaired.append(pattern)  # keep original; flag for removal
        else:
            repaired_ids.append(i)
            repaired.append(candidate)

    faults_before = faults_after = 0
    if fsim is not None and faults is not None:
        from ..atpg.compact import coverage_of_set

        faults_before = coverage_of_set(fsim, pattern_set, faults)
        faults_after = coverage_of_set(fsim, repaired, faults)

    after_report = validate_pattern_set(calculator, repaired, thresholds_mw)
    return RepairOutcome(
        repaired_set=repaired,
        repaired_patterns=repaired_ids,
        unrepairable_patterns=unrepairable_ids,
        violations_before=len(report.violating_patterns()),
        violations_after=len(after_report.violating_patterns()),
        faults_before=faults_before,
        faults_after=faults_after,
    )


def _violates(
    profile: PatternPowerProfile, thresholds_mw: Dict[str, float]
) -> bool:
    return any(
        profile.scap_mw(block) > limit
        for block, limit in thresholds_mw.items()
    )
