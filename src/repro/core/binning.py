"""Monte-Carlo chip binning: yield loss from test-induced noise.

The overkill analysis flags endpoints for one nominal chip; this module
asks the production question: across a *population* of chips with
process speed variation, how many good chips does each pattern set
throw away?

Chip model: a global speed factor ``f ~ N(1, sigma)`` (clipped) scales
every path delay — the standard first-order global-corner model.  A
chip is **functionally good** when its scaled critical endpoint delays
meet the cycle; the tester rejects it when any pattern's *IR-scaled*
endpoint misses the test period.  Overkill = good chips rejected;
escapes are not modelled (no injected defects) — this is purely the
false-failure side, which is the paper's concern.

Because both chip speed and IR effects act multiplicatively on the
per-pattern endpoint delays already computed by
:func:`~repro.core.overkill.overkill_analysis`, the Monte-Carlo loop is
pure arithmetic: thousands of chips per second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigError
from .overkill import OverkillReport


@dataclass
class BinningResult:
    """Population statistics from one binning run."""

    n_chips: int
    functionally_good: int
    passed_test: int
    overkill: int  # good chips rejected by the test
    sigma: float
    period_ns: float

    @property
    def yield_loss_fraction(self) -> float:
        """Share of good chips killed by test-induced noise."""
        """Share of good chips killed by test-induced noise."""
        if self.functionally_good == 0:
            return 0.0
        return self.overkill / self.functionally_good


def binning_simulation(
    report: OverkillReport,
    n_chips: int = 2000,
    sigma: float = 0.05,
    seed: int = 0,
    guardband: float = 1.0,
    period_ns: Optional[float] = None,
) -> BinningResult:
    """Monte-Carlo binning on top of an overkill report.

    Parameters
    ----------
    report:
        Per-pattern worst nominal/IR-scaled endpoint delays (run
        :func:`~repro.core.overkill.overkill_analysis` first; the
        recorded delays do not depend on the report's period, so one
        report can be binned at many test periods).
    n_chips:
        Population size.
    sigma:
        Relative std-dev of the global chip speed factor.
    guardband:
        Multiplier on the functional budget when declaring a chip
        "functionally good" (1.0 = exactly the test period).
    period_ns:
        Test period to bin at; defaults to the report's period.
    """
    if not report.patterns:
        raise ConfigError("overkill report has no patterns")
    if sigma < 0:
        raise ConfigError("sigma must be >= 0")
    if period_ns is None:
        period_ns = report.period_ns

    budget = period_ns - report.setup_ns
    worst_nominal = max(p.worst_nominal_ns for p in report.patterns)
    worst_scaled = max(p.worst_scaled_ns for p in report.patterns)

    rng = np.random.default_rng(seed)
    speed = np.clip(rng.normal(1.0, sigma, size=n_chips), 0.7, 1.3)

    # A chip is functionally good when its (speed-scaled) worst
    # sensitized path meets the guardbanded budget without test noise.
    good = speed * worst_nominal <= budget * guardband
    # The tester measures with the pattern's own IR droop on top.
    passed = speed * worst_scaled <= budget

    overkill = int(np.count_nonzero(good & ~passed))
    return BinningResult(
        n_chips=n_chips,
        functionally_good=int(np.count_nonzero(good)),
        passed_test=int(np.count_nonzero(passed)),
        overkill=overkill,
        sigma=sigma,
        period_ns=period_ns,
    )


def guardband_for_yield(
    report: OverkillReport,
    max_yield_loss: float = 0.01,
    n_chips: int = 4000,
    sigma: float = 0.05,
    seed: int = 0,
    resolution_ns: float = 0.05,
) -> float:
    """Smallest test period keeping yield loss under *max_yield_loss*.

    The noise-induced guardband of a pattern set: how much slower than
    its nominal capability it must be tested so its own supply noise
    stops killing good chips.  Linear sweep from the fastest
    nominally-meaningful period upward.
    """
    if not 0 <= max_yield_loss < 1:
        raise ConfigError("max_yield_loss must be in [0, 1)")
    start = max(p.worst_nominal_ns for p in report.patterns) + report.setup_ns
    stop = max(p.worst_scaled_ns for p in report.patterns) + \
        report.setup_ns + 1.0
    period = start
    while period <= stop:
        result = binning_simulation(
            report, n_chips=n_chips, sigma=sigma, seed=seed,
            period_ns=period,
        )
        # A meaningful operating point needs most of the population to
        # be functionally good; otherwise 0/0 yield loss is vacuous.
        healthy = result.functionally_good >= n_chips // 2
        if healthy and result.yield_loss_fraction <= max_yield_loss:
            return period
        period += resolution_ns
    return stop
