"""Per-block SCAP thresholds (paper Sections 2.2 and 2.4).

The paper screens patterns against each block's *statistical average
switching power over a half-cycle window at 30 % toggle rate* — a
deliberately pessimistic proxy for the worst functional supply noise the
block was signed off against.  A pattern whose SCAP exceeds a block's
threshold risks an IR-drop-induced false delay failure in that block.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import STATISTICAL_TOGGLE_RATE
from ..pgrid.grid import GridModel
from ..pgrid.statistical_ir import (
    block_power_thresholds_mw,
    statistical_ir_analysis,
)


def derive_scap_thresholds(
    model: GridModel,
    domain: Optional[str] = None,
    toggle_rate: float = STATISTICAL_TOGGLE_RATE,
    window_fraction: float = 0.5,
) -> Dict[str, float]:
    """Per-block SCAP limits in mW (Case-2 statistical power by default).

    Parameters
    ----------
    model:
        The design's power-grid model (carries the design).
    domain:
        Clock domain whose period defines the window; defaults to the
        dominant domain.
    toggle_rate:
        Vectorless toggle probability (paper: 0.30).
    window_fraction:
        0.5 = the paper's half-cycle switching-time-frame window.
    """
    rows = statistical_ir_analysis(
        model,
        domain=domain,
        toggle_rate=toggle_rate,
        window_fraction=window_fraction,
    )
    return block_power_thresholds_mw(rows)
