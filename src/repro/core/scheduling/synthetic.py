"""Synthetic SOC families for scheduler benchmarks.

``bench_scheduling.py`` needs SOCs of increasing block count with
multiple wrapper-width candidates per block — far beyond the six-block
Turbo Eagle.  :func:`generate_block_specs` produces such designs at the
scheduling abstraction level (per-block candidate rectangles), fully
deterministic in the seed, with the size distributions skewed the way
real SOCs are: a few large power-dense cores and a tail of small
peripherals (the Turbo Eagle's B5-vs-rest shape, extended to *n*
blocks).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ...errors import ConfigError
from .model import BlockTestSpec, TamCandidate


def generate_block_specs(
    n_blocks: int,
    seed: int = 2007,
    max_width: int = 8,
    n_widths: int = 3,
    base_time_us: float = 100.0,
    base_power_mw: float = 4.0,
    width_power_factor: float = 0.15,
) -> List[BlockTestSpec]:
    """A deterministic *n_blocks*-block SOC as scheduling specs.

    Per block: test time at width 1 is log-normally distributed around
    *base_time_us* (a few big cores, many small ones), test power is
    correlated with size, and the candidate widths are *n_widths*
    powers of two up to *max_width*.  Wider wrappers divide the time
    (``t(w) = t(1)/w``) and cost ``width_power_factor`` extra power per
    doubling — shifting through more chains in parallel toggles more
    cells per cycle.

    Raises
    ------
    ConfigError
        On a non-positive block count or width budget.
    """
    if n_blocks < 1:
        raise ConfigError("need at least one block")
    if max_width < 1 or n_widths < 1:
        raise ConfigError("width options must be positive")
    rng = np.random.default_rng(seed)
    widths_all = [
        w for w in (1, 2, 4, 8, 16, 32, 64) if w <= max_width
    ][: max(1, n_widths)]
    specs: List[BlockTestSpec] = []
    for i in range(n_blocks):
        size = float(rng.lognormal(mean=0.0, sigma=0.7))
        time1 = base_time_us * size
        power = base_power_mw * (0.4 + 0.6 * size) * float(
            rng.uniform(0.8, 1.2)
        )
        n_opts = int(rng.integers(2, len(widths_all) + 1)) if len(
            widths_all
        ) > 1 else 1
        widths = widths_all[:n_opts]
        specs.append(
            BlockTestSpec(
                f"C{i}",
                tuple(
                    TamCandidate(
                        width=w,
                        time_us=time1 / w,
                        power_mw=power
                        * (1.0 + width_power_factor * float(np.log2(w))),
                    )
                    for w in widths
                ),
            )
        )
    return specs


def budget_sweep(
    specs: Sequence[BlockTestSpec],
    fractions: Optional[Sequence[float]] = None,
) -> List[float]:
    """Power budgets sweeping serial-ish to fully-parallel regimes.

    Each budget is a *fraction* of the all-blocks-at-once power sum,
    floored at the largest single block's quietest power (below that no
    schedule exists at all).
    """
    if not specs:
        raise ConfigError("no specs to sweep")
    if fractions is None:
        fractions = (0.15, 0.25, 0.4, 0.6, 0.8, 1.0)
    total = sum(max(c.power_mw for c in s.candidates) for s in specs)
    floor = max(s.min_power_mw for s in specs)
    return sorted({max(floor * 1.01, total * f) for f in fractions})
