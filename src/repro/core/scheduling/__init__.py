"""Power-constrained SOC test scheduling with wrapper/TAM co-optimisation.

The paper's introduction frames the noise problem partly through SOC
test scheduling (its refs [5][6]): blocks are tested in parallel to cut
test time, but the *sum* of their test power must stay under the chip's
functional power threshold.  The related work goes further — wrapper/
TAM co-optimisation schedules each block as a *rectangle* in the
TAM-width × time plane, trading wrapper width against test time per
block while packing under the power envelope.

This package is that scheduler:

* :mod:`~repro.core.scheduling.model` — tasks, candidate rectangles,
  budgets, placements and :class:`TestSchedule` invariants;
* :mod:`~repro.core.scheduling.strategies` — the :class:`Scheduler`
  interface and registry with the greedy-session baseline and the
  rectangle bin-packing strategy;
* :mod:`~repro.core.scheduling.flowtasks` — bridges from designs and
  flow results (wrapper partitioning for times,
  :class:`~repro.power.static_bound.StaticScapBound` for powers);
* :mod:`~repro.core.scheduling.synthetic` — generated SOC families for
  the Pareto benchmarks.

``schedule_block_tests`` (the original greedy entry point) and
``tasks_from_flow`` keep their signatures as back-compat wrappers.
"""

from .model import (
    AnyBlockTest,
    BlockTestSpec,
    BlockTestTask,
    Placement,
    ScheduleBudget,
    ScheduleSession,
    TamCandidate,
    TestSchedule,
    as_specs,
)
from .strategies import (
    BinPackingScheduler,
    GreedyScheduler,
    Scheduler,
    available_schedulers,
    get_scheduler,
    register_scheduler,
    schedule_block_tests,
    schedule_tests,
)
from .flowtasks import (
    specs_from_design,
    specs_from_flow,
    tasks_from_flow,
)
from .synthetic import budget_sweep, generate_block_specs

__all__ = [
    "AnyBlockTest",
    "BinPackingScheduler",
    "BlockTestSpec",
    "BlockTestTask",
    "GreedyScheduler",
    "Placement",
    "ScheduleBudget",
    "ScheduleSession",
    "Scheduler",
    "TamCandidate",
    "TestSchedule",
    "as_specs",
    "available_schedulers",
    "budget_sweep",
    "generate_block_specs",
    "get_scheduler",
    "register_scheduler",
    "schedule_block_tests",
    "schedule_tests",
    "specs_from_design",
    "specs_from_flow",
    "tasks_from_flow",
]
