"""Scheduling strategies behind one :class:`Scheduler` interface.

Mirrors the ``check_netlist`` → registry pattern from the DRC
subsystem: strategies are registered by name in a module registry,
:func:`get_scheduler` instantiates one, and the legacy
``schedule_block_tests`` survives as a thin wrapper over the greedy
entry.

* :class:`GreedyScheduler` — the original session-based first-fit-
  decreasing heuristic, lifted to width-aware specs (each block keeps
  its narrowest wrapper; sessions run back to back);
* :class:`BinPackingScheduler` — 2D rectangle packing in the
  TAM-width × time plane under the power envelope, with the
  diagonal-length tie-break from the rectangle bin-packing paper and a
  never-worse-than-greedy guarantee (it keeps whichever of its packing
  and the greedy baseline finishes first).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from ...errors import ConfigError
from ...obs import current_telemetry
from .model import (
    AnyBlockTest,
    BlockTestSpec,
    Placement,
    ScheduleBudget,
    TamCandidate,
    TestSchedule,
    as_specs,
)


class Scheduler(Protocol):
    """What every scheduling strategy implements."""

    name: str

    def schedule(
        self, tasks: Sequence[AnyBlockTest], budget: ScheduleBudget
    ) -> TestSchedule:
        """Place every task under *budget*; raise
        :class:`~repro.errors.ConfigError` when that is impossible."""
        ...


_REGISTRY: Dict[str, Callable[[], Scheduler]] = {}


def register_scheduler(
    name: str, factory: Callable[[], Scheduler]
) -> None:
    """Register a strategy factory under *name* (unique)."""
    if name in _REGISTRY:
        raise ConfigError(f"duplicate scheduler name {name!r}")
    _REGISTRY[name] = factory


def available_schedulers() -> List[str]:
    """Registered strategy names, in registration order."""
    return list(_REGISTRY)


def get_scheduler(name: str) -> Scheduler:
    """Instantiate the strategy registered under *name*."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheduler {name!r}; choose from "
            f"{available_schedulers()}"
        ) from None
    return factory()


# ----------------------------------------------------------------------
# shared feasibility checks
# ----------------------------------------------------------------------
def check_feasible(
    specs: Sequence[BlockTestSpec], budget: ScheduleBudget
) -> None:
    """Reject inputs no strategy could ever place, with messages that
    name the offending block."""
    if not specs:
        raise ConfigError("no tasks to schedule")
    for spec in specs:
        if spec.min_power_mw > budget.power_mw:
            raise ConfigError(
                f"block {spec.block!r} needs {spec.min_power_mw:.2f} mW "
                f"even at its quietest wrapper configuration, over the "
                f"{budget.power_mw:.2f} mW budget"
            )
        if (
            budget.tam_width is not None
            and spec.min_width > budget.tam_width
        ):
            raise ConfigError(
                f"block {spec.block!r} needs at least "
                f"{spec.min_width} TAM lines, over the TAM width "
                f"{budget.tam_width}"
            )
        if not spec.feasible(budget.power_mw, budget.tam_width):
            raise ConfigError(
                f"block {spec.block!r} has no candidate inside both the "
                f"{budget.power_mw:.2f} mW budget and TAM width "
                f"{budget.tam_width}"
            )


# ----------------------------------------------------------------------
# greedy sessions (the original heuristic, width-aware)
# ----------------------------------------------------------------------
class GreedyScheduler:
    """First-fit-decreasing sessions under the power envelope.

    Each block keeps its *narrowest* feasible wrapper (for legacy
    width-1 tasks that is the one and only candidate, reproducing the
    pre-TAM behaviour exactly).  Tasks are considered in decreasing
    test time; each joins the first session with power (and, with a
    TAM limit, width) headroom, or opens a new one.  Sessions run back
    to back.
    """

    name = "greedy"

    def schedule(
        self, tasks: Sequence[AnyBlockTest], budget: ScheduleBudget
    ) -> TestSchedule:
        specs = as_specs(tasks)
        check_feasible(specs, budget)
        tel = current_telemetry()
        with tel.span(
            "sched.run", strategy=self.name, n_blocks=len(specs)
        ):
            chosen: List[Tuple[str, TamCandidate]] = []
            for spec in specs:
                feasible = spec.feasible(budget.power_mw, budget.tam_width)
                chosen.append(
                    (spec.block, min(feasible, key=lambda c: c.width))
                )
            chosen.sort(key=lambda bc: -bc[1].time_us)

            sessions: List[List[Tuple[str, TamCandidate]]] = []
            for block, cand in chosen:
                placed = False
                for session in sessions:
                    power = sum(c.power_mw for _b, c in session)
                    width = sum(c.width for _b, c in session)
                    if power + cand.power_mw > budget.power_mw:
                        continue
                    if (
                        budget.tam_width is not None
                        and width + cand.width > budget.tam_width
                    ):
                        continue
                    session.append((block, cand))
                    placed = True
                    break
                if not placed:
                    sessions.append([(block, cand)])

            placements: List[Placement] = []
            start = 0.0
            for session in sessions:
                offset = 0
                for block, cand in session:
                    placements.append(
                        Placement(
                            block=block,
                            start_us=start,
                            time_us=cand.time_us,
                            power_mw=cand.power_mw,
                            tam_width=cand.width,
                            tam_offset=offset,
                        )
                    )
                    offset += cand.width
                start += max(c.time_us for _b, c in session)
            tel.count("sched.placements", float(len(placements)))
            return TestSchedule(
                placements=placements,
                power_budget_mw=budget.power_mw,
                tam_width=budget.tam_width,
                strategy=self.name,
            )


# ----------------------------------------------------------------------
# rectangle bin packing
# ----------------------------------------------------------------------
class BinPackingScheduler:
    """2D rectangle packing in the TAM-width × time plane.

    Blocks are placed largest-test-data-volume first (candidate area
    ``w x t``, which is roughly width-invariant, with the rectangle
    diagonal as tie-break — the ordering from the bin-packing paper).
    For each block every feasible candidate rectangle is tried at its
    earliest power- and TAM-feasible start; the candidate finishing
    soonest wins, preferring the larger diagonal on ties.  The result
    is compared against the greedy baseline and the faster schedule is
    returned, so packing is never worse than the legacy heuristic.
    """

    name = "binpack"

    def schedule(
        self, tasks: Sequence[AnyBlockTest], budget: ScheduleBudget
    ) -> TestSchedule:
        specs = as_specs(tasks)
        check_feasible(specs, budget)
        tel = current_telemetry()
        with tel.span(
            "sched.run", strategy=self.name, n_blocks=len(specs)
        ):
            packed = self._pack(specs, budget)
            baseline = GreedyScheduler().schedule(specs, budget)
            if baseline.makespan_us < packed.makespan_us:
                tel.count("sched.greedy_fallback")
                packed = TestSchedule(
                    placements=baseline.placements,
                    power_budget_mw=budget.power_mw,
                    tam_width=budget.tam_width,
                    strategy=self.name,
                )
            tel.count("sched.placements", float(len(packed.placements)))
            return packed

    # ------------------------------------------------------------------
    def _pack(
        self, specs: Sequence[BlockTestSpec], budget: ScheduleBudget
    ) -> TestSchedule:
        tam = (
            budget.tam_width
            if budget.tam_width is not None
            else sum(
                max(
                    c.width
                    for c in s.feasible(budget.power_mw, None)
                )
                for s in specs
            )
        )

        def sort_key(spec: BlockTestSpec) -> Tuple[float, float]:
            best = max(
                spec.feasible(budget.power_mw, budget.tam_width),
                key=lambda c: (c.width * c.time_us, c.diagonal),
            )
            return (best.width * best.time_us, best.diagonal)

        placed: List[Placement] = []
        for spec in sorted(specs, key=sort_key, reverse=True):
            best: Optional[Placement] = None
            best_key: Optional[Tuple[float, float]] = None
            for cand in spec.feasible(budget.power_mw, budget.tam_width):
                slot = self._earliest_slot(placed, cand, tam, budget)
                if slot is None:
                    continue
                start, offset = slot
                key = (start + cand.time_us, -cand.diagonal)
                if best_key is None or key < best_key:
                    best_key = key
                    best = Placement(
                        block=spec.block,
                        start_us=start,
                        time_us=cand.time_us,
                        power_mw=cand.power_mw,
                        tam_width=cand.width,
                        tam_offset=offset,
                    )
            if best is None:  # pragma: no cover - check_feasible guards
                raise ConfigError(
                    f"block {spec.block!r} could not be placed"
                )
            placed.append(best)
        return TestSchedule(
            placements=placed,
            power_budget_mw=budget.power_mw,
            tam_width=budget.tam_width,
            strategy=self.name,
        )

    @staticmethod
    def _earliest_slot(
        placed: Sequence[Placement],
        cand: TamCandidate,
        tam: int,
        budget: ScheduleBudget,
    ) -> Optional[Tuple[float, int]]:
        """Earliest (start, TAM offset) where *cand* fits entirely.

        Candidate starts are the event points of the partial schedule
        (time 0 and every placement end).  At each start the rectangle
        must clear the power envelope over its whole duration and find
        ``cand.width`` contiguous free TAM lines over its whole
        duration.  Both checks are interval checks, so holding from
        every event point inside the window implies holding everywhere.
        """
        if cand.width > tam:
            return None
        starts = sorted({0.0} | {p.end_us for p in placed})
        for start in starts:
            end = start + cand.time_us

            def overlapping(p: Placement) -> bool:
                return p.start_us < end and start < p.end_us

            active = [p for p in placed if overlapping(p)]
            # Power over the window: evaluate at the window start and
            # at every event point inside it.
            checkpoints = [start] + [
                p.start_us for p in active if start < p.start_us < end
            ]
            power_ok = all(
                sum(p.power_mw for p in active if p.active_at(t))
                + cand.power_mw
                <= budget.power_mw + 1e-12
                for t in checkpoints
            )
            if not power_ok:
                continue
            # Contiguous TAM lines free over the whole window.
            busy = [False] * tam
            for p in active:
                for line in range(
                    p.tam_offset, min(tam, p.tam_offset + p.tam_width)
                ):
                    busy[line] = True
            run = 0
            for line in range(tam):
                run = 0 if busy[line] else run + 1
                if run >= cand.width:
                    return (start, line - cand.width + 1)
        return None  # pragma: no cover - unbounded starts always fit


register_scheduler(GreedyScheduler.name, GreedyScheduler)
register_scheduler(BinPackingScheduler.name, BinPackingScheduler)


def schedule_tests(
    tasks: Sequence[AnyBlockTest],
    budget: ScheduleBudget,
    strategy: str = "binpack",
) -> TestSchedule:
    """Schedule *tasks* under *budget* with the named strategy."""
    return get_scheduler(strategy).schedule(tasks, budget)


def schedule_block_tests(
    tasks: Sequence[AnyBlockTest],
    power_budget_mw: float,
) -> TestSchedule:
    """Greedy longest-task-first packing under a session power budget.

    Back-compat wrapper over ``get_scheduler("greedy")`` — the original
    module-level entry point, kept with its original signature and
    semantics (every session's total power stays <= *power_budget_mw*;
    first-fit-decreasing; no TAM width limit).

    Raises
    ------
    ConfigError
        If any single task exceeds the budget (it could never run),
        two tasks share a block name, or the task list is empty.
    """
    return GreedyScheduler().schedule(
        tasks, ScheduleBudget(power_mw=power_budget_mw)
    )
