"""Bridges from real designs and flow results to scheduling inputs.

Two abstraction levels feed the scheduler:

* :func:`tasks_from_flow` — the legacy fixed-width tasks built from a
  staged flow's per-step pattern counts (kept with its original
  signature);
* :func:`specs_from_flow` / :func:`specs_from_design` — width-aware
  candidate rectangles: per block, the wrapper partitioning from
  :mod:`repro.dft.wrapper` sets the shift depth at each TAM width, and
  the power comes from the caller (typically
  :meth:`repro.power.static_bound.StaticScapBound.test_power_bounds_mw`
  — a sound per-session cost model needing no simulation).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ...errors import ConfigError
from .model import BlockTestSpec, BlockTestTask, TamCandidate

if TYPE_CHECKING:  # pragma: no cover
    from ...soc.design import SocDesign
    from ..flow import FlowResult


def tasks_from_flow(
    design: "SocDesign",
    flow_result: "FlowResult",
    scap_by_block_mw: Dict[str, float],
    shift_period_ns: float = 100.0,
    capture_period_ns: float = 20.0,
) -> List[BlockTestTask]:
    """Build scheduling tasks from a staged flow's per-step patterns.

    Each step's pattern count becomes its blocks' test time (patterns x
    (chain length x shift period + capture)), split evenly across the
    step's blocks; power is the caller-provided per-block level
    (thresholds or measured SCAP).

    Raises
    ------
    ConfigError
        If the design has no scan configuration (or an empty one), or
        the flow produced no patterns at all — a zero-task schedule is
        a caller bug, not an empty success.
    """
    if design.scan is None or not design.scan.chains:
        raise ConfigError("design has no scan configuration")
    if flow_result.n_patterns == 0:
        raise ConfigError(
            f"flow {flow_result.name!r} produced no patterns; "
            "nothing to schedule"
        )
    max_chain = max(c.length for c in design.scan.chains)
    per_pattern_us = (
        max_chain * shift_period_ns + capture_period_ns
    ) / 1000.0

    tasks: List[BlockTestTask] = []
    boundaries = list(flow_result.step_boundaries) + [
        flow_result.n_patterns
    ]
    for step_idx, blocks in enumerate(flow_result.step_blocks):
        n_patterns = boundaries[step_idx + 1] - boundaries[step_idx]
        if n_patterns <= 0:
            continue
        share = max(1, n_patterns // max(1, len(blocks)))
        for block in blocks:
            tasks.append(
                BlockTestTask(
                    block=block,
                    test_time_us=share * per_pattern_us,
                    power_mw=scap_by_block_mw.get(block, 0.0),
                )
            )
    if not tasks:
        raise ConfigError(
            f"flow {flow_result.name!r} yielded no schedulable "
            "block sessions"
        )
    return tasks


def _pattern_counts_by_block(flow_result: "FlowResult") -> Dict[str, int]:
    """Per-block pattern shares of a (possibly staged) flow."""
    counts: Dict[str, int] = {}
    boundaries = list(flow_result.step_boundaries) + [
        flow_result.n_patterns
    ]
    for step_idx, blocks in enumerate(flow_result.step_blocks):
        n_patterns = boundaries[step_idx + 1] - boundaries[step_idx]
        if n_patterns <= 0 or not blocks:
            continue
        share = max(1, n_patterns // len(blocks))
        for block in blocks:
            counts[block] = counts.get(block, 0) + share
    return counts


def specs_from_design(
    design: "SocDesign",
    power_by_block_mw: Dict[str, float],
    patterns_by_block: Dict[str, int],
    shift_period_ns: float = 100.0,
    capture_period_ns: float = 20.0,
    widths: Optional[Dict[str, Sequence[int]]] = None,
) -> List[BlockTestSpec]:
    """Width-aware candidate rectangles for every schedulable block.

    Per block and TAM width *w*: the wrapper repartitions the block's
    scan cells into *w* balanced chains (shift depth ``ceil(cells/w)``),
    so one pattern takes ``ceil(cells/w) x shift + capture`` and the
    block's test time shrinks roughly as ``t(1)/w``.  Candidate widths
    default to :meth:`~repro.soc.design.SocDesign.tam_width_options`.
    Blocks without scan cells, patterns, or power are skipped.
    """
    if design.scan is None or not design.scan.chains:
        raise ConfigError("design has no scan configuration")
    specs: List[BlockTestSpec] = []
    for block in design.blocks():
        n_patterns = patterns_by_block.get(block, 0)
        if n_patterns <= 0:
            continue
        options = (
            list(widths[block])
            if widths is not None and block in widths
            else design.tam_width_options(block)
        )
        if not options:
            continue
        n_cells = sum(
            1
            for fi in design.flops_in_block(block)
            if design.netlist.flops[fi].is_scan
        )
        power = power_by_block_mw.get(block, 0.0)
        candidates: List[TamCandidate] = []
        for w in sorted(set(options)):
            depth = math.ceil(n_cells / w)
            per_pattern_us = (
                depth * shift_period_ns + capture_period_ns
            ) / 1000.0
            candidates.append(
                TamCandidate(
                    width=w,
                    time_us=n_patterns * per_pattern_us,
                    power_mw=power,
                )
            )
        specs.append(BlockTestSpec(block, tuple(candidates)))
    if not specs:
        raise ConfigError("design yielded no schedulable blocks")
    return specs


def specs_from_flow(
    design: "SocDesign",
    flow_result: "FlowResult",
    power_by_block_mw: Dict[str, float],
    shift_period_ns: float = 100.0,
    capture_period_ns: float = 20.0,
) -> List[BlockTestSpec]:
    """Candidate rectangles from a flow's actual per-block patterns."""
    if flow_result.n_patterns == 0:
        raise ConfigError(
            f"flow {flow_result.name!r} produced no patterns; "
            "nothing to schedule"
        )
    return specs_from_design(
        design,
        power_by_block_mw,
        _pattern_counts_by_block(flow_result),
        shift_period_ns=shift_period_ns,
        capture_period_ns=capture_period_ns,
    )
