"""Data model of SOC-level test scheduling.

The scheduling plane is the one from the rectangle bin-packing
literature (Iyengar/Chakrabarty/Marinissen): the x-axis is time, the
y-axis is the chip's TAM (Test Access Mechanism) width in TAM lines.
Each block under test occupies a rectangle — its wrapper is configured
to some width ``w`` out of a discrete candidate set, and testing then
takes ``t(w)`` (roughly ``t(1)/w``: wider wrappers shift the same scan
data through more, shorter wrapper chains).  A schedule places one
rectangle per block so that rectangles never overlap on TAM lines and
the *sum of the active blocks' test power* stays under the chip-wide
envelope at every instant.

Model vocabulary:

* :class:`TamCandidate` — one (width, time, power) choice for a block;
* :class:`BlockTestSpec` — a block plus its candidate rectangles;
* :class:`BlockTestTask` — the legacy fixed (time, power) task, i.e. a
  single-candidate width-1 spec;
* :class:`ScheduleBudget` — the chip-wide power envelope and TAM width;
* :class:`Placement` — one block's chosen rectangle placed in the plane;
* :class:`TestSchedule` — the full placed schedule with its invariants
  (:meth:`~TestSchedule.validate`) and figures of merit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ...errors import ConfigError


@dataclass(frozen=True)
class TamCandidate:
    """One wrapper/TAM configuration a block may be tested under."""

    #: Wrapper width in TAM lines (the rectangle's height).
    width: int
    #: Test time at this width (the rectangle's length).
    time_us: float
    #: Block test power while this configuration is active.
    power_mw: float

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ConfigError("TAM candidate width must be >= 1")
        if self.time_us <= 0:
            raise ConfigError("TAM candidate test time must be positive")
        if self.power_mw < 0:
            raise ConfigError("TAM candidate power must be >= 0")

    @property
    def diagonal(self) -> float:
        """Rectangle diagonal length — the bin-packing paper's
        preference key when two placements complete equally fast."""
        return math.hypot(float(self.width), self.time_us)


@dataclass(frozen=True)
class BlockTestTask:
    """One block's fixed test session requirements (legacy model).

    ``test_time_us`` is typically ``patterns x (shift + capture) time``;
    ``power_mw`` the block's average test power (e.g. its SCAP level).
    A task is exactly a single-candidate width-1 :class:`BlockTestSpec`
    (see :meth:`as_spec`), which is how the schedulers consume it.
    """

    block: str
    test_time_us: float
    power_mw: float

    def __post_init__(self) -> None:
        if self.test_time_us <= 0:
            raise ConfigError(f"{self.block}: test time must be positive")
        if self.power_mw < 0:
            raise ConfigError(f"{self.block}: power must be >= 0")

    def as_spec(self) -> "BlockTestSpec":
        return BlockTestSpec(
            self.block,
            (TamCandidate(1, self.test_time_us, self.power_mw),),
        )


@dataclass(frozen=True)
class BlockTestSpec:
    """A block plus its candidate wrapper/TAM rectangles."""

    block: str
    candidates: Tuple[TamCandidate, ...]

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ConfigError(
                f"block {self.block!r} has no TAM candidates"
            )
        widths = [c.width for c in self.candidates]
        if len(set(widths)) != len(widths):
            raise ConfigError(
                f"block {self.block!r} has duplicate TAM widths"
            )

    @classmethod
    def from_base(
        cls,
        block: str,
        time_at_width1_us: float,
        power_mw: float,
        widths: Sequence[int],
    ) -> "BlockTestSpec":
        """Candidates under the first-order model ``t(w) = t(1) / w``."""
        if not widths:
            raise ConfigError(f"block {block!r}: empty width list")
        return cls(
            block,
            tuple(
                TamCandidate(w, time_at_width1_us / w, power_mw)
                for w in sorted(set(widths))
            ),
        )

    @property
    def min_width(self) -> int:
        return min(c.width for c in self.candidates)

    @property
    def min_power_mw(self) -> float:
        return min(c.power_mw for c in self.candidates)

    def narrowest(self) -> TamCandidate:
        """The narrowest candidate (the conservative serial-era choice)."""
        return min(self.candidates, key=lambda c: c.width)

    def feasible(
        self, power_budget_mw: float, tam_width: Optional[int]
    ) -> List[TamCandidate]:
        """Candidates that fit the envelope and TAM width at all."""
        return [
            c
            for c in self.candidates
            if c.power_mw <= power_budget_mw
            and (tam_width is None or c.width <= tam_width)
        ]


AnyBlockTest = Union[BlockTestTask, BlockTestSpec]


def as_specs(tasks: Sequence[AnyBlockTest]) -> List[BlockTestSpec]:
    """Normalise a mixed task/spec sequence, rejecting duplicates."""
    specs = [
        t.as_spec() if isinstance(t, BlockTestTask) else t for t in tasks
    ]
    names = [s.block for s in specs]
    if len(set(names)) != len(names):
        raise ConfigError("duplicate block in task list")
    return specs


@dataclass(frozen=True)
class ScheduleBudget:
    """Chip-wide scheduling constraints."""

    #: Power envelope: the sum of active blocks' test power must stay
    #: at or below this at every instant.
    power_mw: float
    #: Total TAM width in lines (``None`` = unconstrained: every block
    #: may use its widest wrapper and only power limits parallelism).
    tam_width: Optional[int] = None

    def __post_init__(self) -> None:
        if self.power_mw <= 0:
            raise ConfigError("power budget must be positive")
        if self.tam_width is not None and self.tam_width < 1:
            raise ConfigError("TAM width must be >= 1")


@dataclass(frozen=True)
class Placement:
    """One block's rectangle, placed: when, how wide, where on the TAM."""

    block: str
    start_us: float
    time_us: float
    power_mw: float
    tam_width: int = 1
    #: First TAM line the wrapper occupies (lines are contiguous).
    tam_offset: int = 0

    @property
    def end_us(self) -> float:
        return self.start_us + self.time_us

    def active_at(self, t_us: float) -> bool:
        return self.start_us <= t_us < self.end_us

    def to_dict(self) -> Dict[str, Any]:
        return {
            "block": self.block,
            "start_us": self.start_us,
            "time_us": self.time_us,
            "power_mw": self.power_mw,
            "tam_width": self.tam_width,
            "tam_offset": self.tam_offset,
        }


@dataclass
class ScheduleSession:
    """A set of blocks tested in parallel (the legacy session view)."""

    tasks: List[BlockTestTask] = field(default_factory=list)

    @property
    def power_mw(self) -> float:
        """Combined power of the session's parallel tasks."""
        return sum(t.power_mw for t in self.tasks)

    @property
    def time_us(self) -> float:
        """Session duration: its longest task."""
        return max((t.test_time_us for t in self.tasks), default=0.0)


@dataclass
class TestSchedule:
    """A complete schedule: placed rectangles in the TAM × time plane.

    Session-based strategies (the greedy baseline) produce placements
    whose start times group into back-to-back sessions; rectangle
    packing produces free-form placements.  The legacy ``sessions``
    view groups placements by start time, which reproduces the old
    session list exactly for session-based schedules.
    """

    placements: List[Placement]
    power_budget_mw: float
    tam_width: Optional[int] = None
    strategy: str = "greedy"

    # ------------------------------------------------------------------
    # figures of merit
    # ------------------------------------------------------------------
    @property
    def makespan_us(self) -> float:
        """Total test time: when the last block finishes."""
        return max((p.end_us for p in self.placements), default=0.0)

    @property
    def peak_power_mw(self) -> float:
        """Worst instantaneous power (must respect the budget)."""
        return max(
            (power for _t, power in self.power_profile()), default=0.0
        )

    @property
    def serial_time_us(self) -> float:
        """Baseline: every block tested alone, sequentially, at its
        scheduled wrapper width."""
        return sum(p.time_us for p in self.placements)

    @property
    def speedup(self) -> float:
        """Serial time over makespan.

        Raises
        ------
        ConfigError
            On an empty schedule — a speedup of "nothing over nothing"
            is a caller bug, not 1.0.
        """
        if not self.placements:
            raise ConfigError(
                "schedule has no tasks; speedup is undefined"
            )
        return self.serial_time_us / self.makespan_us

    def blocks(self) -> List[str]:
        """Scheduled block names in session/start order."""
        return [
            p.block
            for p in sorted(
                self.placements, key=lambda p: (p.start_us, p.tam_offset)
            )
        ]

    # ------------------------------------------------------------------
    # structure views
    # ------------------------------------------------------------------
    @property
    def sessions(self) -> List[ScheduleSession]:
        """Placements grouped by start time, as legacy sessions."""
        groups: Dict[float, List[Placement]] = {}
        for p in self.placements:
            groups.setdefault(p.start_us, []).append(p)
        return [
            ScheduleSession(
                [
                    BlockTestTask(p.block, p.time_us, p.power_mw)
                    for p in sorted(groups[start], key=lambda p: p.tam_offset)
                ]
            )
            for start in sorted(groups)
        ]

    def power_profile(self) -> List[Tuple[float, float]]:
        """Instantaneous power as a step function.

        Returns ``(time_us, power_mw)`` pairs at every event point
        (each placement start/end), where the power holds from that
        time until the next event.
        """
        events = sorted(
            {p.start_us for p in self.placements}
            | {p.end_us for p in self.placements}
        )
        return [
            (
                t,
                sum(p.power_mw for p in self.placements if p.active_at(t)),
            )
            for t in events
        ]

    def tam_profile(self) -> List[Tuple[float, int]]:
        """Occupied TAM lines as a step function over event points."""
        events = sorted(
            {p.start_us for p in self.placements}
            | {p.end_us for p in self.placements}
        )
        return [
            (
                t,
                sum(p.tam_width for p in self.placements if p.active_at(t)),
            )
            for t in events
        ]

    # ------------------------------------------------------------------
    def validate(self, tol: float = 1e-9) -> None:
        """Check every schedule invariant; raise :class:`ConfigError`
        on the first violation.

        Invariants: each block placed exactly once; instantaneous power
        under the envelope everywhere; concurrent placements fit the
        TAM width; no two concurrent placements overlap on TAM lines.
        """
        names = [p.block for p in self.placements]
        if len(set(names)) != len(names):
            raise ConfigError("schedule places a block more than once")
        for t, power in self.power_profile():
            if power > self.power_budget_mw + tol:
                raise ConfigError(
                    f"power envelope violated at t={t:.3f} us: "
                    f"{power:.3f} mW > {self.power_budget_mw:.3f} mW"
                )
        if self.tam_width is not None:
            for t, used in self.tam_profile():
                if used > self.tam_width:
                    raise ConfigError(
                        f"TAM width violated at t={t:.3f} us: "
                        f"{used} lines > {self.tam_width}"
                    )
            for p in self.placements:
                if p.tam_offset < 0 or (
                    p.tam_offset + p.tam_width > self.tam_width
                ):
                    raise ConfigError(
                        f"block {p.block!r} placed outside the TAM "
                        f"(lines {p.tam_offset}..{p.tam_offset + p.tam_width}"
                        f" of {self.tam_width})"
                    )
            ordered = sorted(
                self.placements, key=lambda p: (p.tam_offset, p.start_us)
            )
            for i, a in enumerate(ordered):
                for b in ordered[i + 1:]:
                    if b.tam_offset >= a.tam_offset + a.tam_width:
                        break
                    overlap_t = (
                        min(a.end_us, b.end_us)
                        - max(a.start_us, b.start_us)
                    )
                    if overlap_t > tol:
                        raise ConfigError(
                            f"blocks {a.block!r} and {b.block!r} overlap "
                            f"on TAM lines"
                        )

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-friendly digest (recorded in ``RunReport.schedule``)."""
        return {
            "strategy": self.strategy,
            "n_blocks": len(self.placements),
            "power_budget_mw": self.power_budget_mw,
            "tam_width": self.tam_width,
            "makespan_us": self.makespan_us,
            "serial_time_us": self.serial_time_us,
            "speedup": self.speedup if self.placements else None,
            "peak_power_mw": self.peak_power_mw,
            "placements": [p.to_dict() for p in self.placements],
        }
