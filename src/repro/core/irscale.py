"""IR-drop-aware delay-scaled re-simulation (paper Section 3.2, Fig 7).

Two gate-level simulations of the same pattern:

* **Case 1** — nominal cell delays,
* **Case 2** — every cell (logic *and* clock-tree buffer) slowed by
  ``Delay * (1 + k_volt * dV)`` where ``dV`` is the cell's local supply
  droop from the pattern's own dynamic IR-drop analysis (k_volt = 0.9:
  a 0.1 V droop costs 9 % delay).

Endpoint (scan-flop) path delays are then compared against each flop's
*own* clock arrival, reproducing both paper regions:

* **Region 1** — endpoints whose data path crosses the droopy area get
  slower, by up to tens of percent,
* **Region 2** — endpoints whose *capture clock* path slows more than
  their data path appear *faster*, because the delay is measured
  relative to the late clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..config import ElectricalEnv
from ..pgrid.dynamic_ir import DynamicIrResult, dynamic_ir_for_pattern
from ..pgrid.grid import GridModel
from ..power.calculator import ScapCalculator
from ..sim.endpoints import endpoint_delays
from ..sim.event import EventTimingSim, build_launch_events
from ..sim.logic import loc_launch_capture
from ..soc.clocks import ClockBuffer


@dataclass
class IrScaledComparison:
    """Per-endpoint delays with and without IR-drop effects."""

    pattern_index: int
    nominal_ns: Dict[int, float]
    scaled_ns: Dict[int, float]
    ir: DynamicIrResult

    def deltas(self) -> Dict[int, float]:
        """scaled - nominal per active endpoint (both cases active)."""
        return {
            fi: self.scaled_ns[fi] - self.nominal_ns[fi]
            for fi in self.nominal_ns
            if self.nominal_ns[fi] != 0.0 and self.scaled_ns.get(fi, 0.0) != 0.0
        }

    def region1(self, min_increase_ns: float = 1e-9) -> List[int]:
        """Endpoints that got slower under IR-drop."""
        return sorted(
            fi for fi, d in self.deltas().items() if d > min_increase_ns
        )

    def region2(self, min_decrease_ns: float = 1e-9) -> List[int]:
        """Endpoints that *appear faster* (capture-clock skew effect)."""
        return sorted(
            fi for fi, d in self.deltas().items() if d < -min_decrease_ns
        )

    def max_increase_pct(self) -> float:
        worst = 0.0
        for fi, delta in self.deltas().items():
            base = self.nominal_ns[fi]
            if base > 0:
                worst = max(worst, delta / base * 100.0)
        return worst


def clock_droop_scale_fn(
    model: GridModel,
    ir: DynamicIrResult,
    domain: str,
    env: ElectricalEnv,
) -> Callable[[ClockBuffer, float], float]:
    """Per-buffer delay scaling from the local rail droop."""
    tree = model.design.clock_trees[domain]
    nodes = model.clock_nodes[domain]
    total = ir.drop_vdd + ir.drop_vss
    droop_by_name = {
        tree.buffers[bi].name: float(total[nodes[bi]])
        for bi in range(len(tree.buffers))
    }

    def scale(buffer: ClockBuffer, nominal_ns: float) -> float:
        return env.scaled_delay(nominal_ns, droop_by_name.get(buffer.name, 0.0))

    return scale


def ir_nominal_case(
    calculator: ScapCalculator,
    model: GridModel,
    v1: Dict[int, int],
) -> Tuple["object", DynamicIrResult, Dict[int, float]]:
    """Case 1 of the comparison: nominal timing and its IR-drop field.

    Returns ``(nominal_timing, ir, nominal_delays)``.  Split out so the
    noise-aware pre-screen (:mod:`repro.timing.prescreen`) can run this
    half, prove the scaled case safe statically, and skip Case 2.
    """
    design = calculator.design
    domain = calculator.domain
    nominal_timing = calculator.simulate_pattern(v1)
    ir = dynamic_ir_for_pattern(model, nominal_timing, domain=domain)
    nominal_delays = endpoint_delays(
        design.netlist,
        design.clock_trees[domain],
        nominal_timing,
        flops=list(calculator.launch_time),
    )
    return nominal_timing, ir, nominal_delays


def ir_scaled_case(
    calculator: ScapCalculator,
    model: GridModel,
    v1: Dict[int, int],
    ir: DynamicIrResult,
    env: ElectricalEnv,
) -> Dict[int, float]:
    """Case 2: every cell slowed by its local droop.

    The asymmetry that creates the paper's Region 2: the *launch* clock
    edge propagates at the start of the cycle, before the switching
    burst, so it sees near-nominal buffer delays; the *capture* edge
    arrives mid-droop and is measured against the scaled clock tree.
    """
    design = calculator.design
    netlist = design.netlist
    domain = calculator.domain
    tree = design.clock_trees[domain]
    scaled_model = calculator.delays.scaled(
        ir.gate_droop_v, ir.flop_droop_v, env
    )
    clock_scale = clock_droop_scale_fn(model, ir, domain, env)
    nominal_launch = dict(calculator.launch_time)
    cyc = loc_launch_capture(calculator.logic, v1, domain)
    launch = {fi: cyc.launch_state[fi] for fi in nominal_launch}
    events = build_launch_events(
        netlist, cyc.frame1, launch, nominal_launch,
        scaled_model.flop_ck2q_ns,
    )
    scaled_sim = EventTimingSim(
        netlist, scaled_model, design.parasitics, calculator.vdd
    )
    scaled_timing = scaled_sim.simulate(
        cyc.frame1, events, capture_time_ns=calculator.period_ns
    )
    return endpoint_delays(
        netlist,
        tree,
        scaled_timing,
        flops=list(calculator.launch_time),
        clock_delay_scale=clock_scale,
    )


def ir_scaled_endpoint_comparison(
    calculator: ScapCalculator,
    model: GridModel,
    pattern,
    index: Optional[int] = None,
    env: Optional[ElectricalEnv] = None,
) -> IrScaledComparison:
    """Run the two-case comparison for one pattern.

    ``pattern`` is a :class:`~repro.atpg.patterns.Pattern` or a raw
    v1 dict (then pass ``index``).
    """
    if env is None:
        env = ElectricalEnv()
    if isinstance(pattern, dict):
        v1, idx = pattern, index if index is not None else 0
    else:
        v1, idx = pattern.v1_dict(), pattern.index

    _nominal_timing, ir, nominal_delays = ir_nominal_case(
        calculator, model, v1
    )
    scaled_delays = ir_scaled_case(calculator, model, v1, ir, env)
    return IrScaledComparison(
        pattern_index=idx,
        nominal_ns=nominal_delays,
        scaled_ns=scaled_delays,
        ir=ir,
    )
