"""Overkill (false-failure) risk analysis.

The paper's opening argument: "a design that may not have a delay fault
may fail a delay test pattern due to excessive IR-drop related effects"
— i.e. test-induced supply noise makes a *good* chip miss the capture
edge and get binned as bad (its reference [17] calls this overkill).

This module quantifies that risk per pattern: an endpoint is an
**overkill risk** when its path meets the cycle at nominal delays but
misses it once the pattern's own IR-drop scales the cells — a failure
the tester would report that says nothing about the silicon.

Comparing the conventional and staged flows on this metric is the
bottom line of the whole methodology: noise-tolerant patterns should
carry (almost) no overkill risk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import ElectricalEnv
from ..errors import ConfigError
from ..pgrid.grid import GridModel
from ..power.calculator import ScapCalculator
from ..sim.sta import SETUP_NS
from .irscale import ir_scaled_endpoint_comparison


@dataclass
class PatternOverkill:
    """Overkill assessment of one pattern."""

    pattern_index: int
    n_active_endpoints: int
    #: Endpoints failing the cycle at nominal delays (true slow paths —
    #: would be real rejects, none expected on a timing-closed design).
    nominal_failures: List[int]
    #: Endpoints passing nominally but failing under IR-scaled delays —
    #: the good-chip kills.
    overkill_endpoints: List[int]
    worst_margin_ns: float
    #: Longest endpoint delays (for choosing FTAS-class test periods).
    worst_nominal_ns: float = 0.0
    worst_scaled_ns: float = 0.0

    @property
    def at_risk(self) -> bool:
        """True when this pattern could fail a good chip."""
        return bool(self.overkill_endpoints)


@dataclass
class OverkillReport:
    """Overkill census for a pattern sample."""

    period_ns: float
    setup_ns: float
    patterns: List[PatternOverkill] = field(default_factory=list)

    @property
    def n_at_risk(self) -> int:
        """Patterns with at least one overkill endpoint."""
        return sum(1 for p in self.patterns if p.at_risk)

    @property
    def risk_fraction(self) -> float:
        """Share of analysed patterns at overkill risk."""
        if not self.patterns:
            return 0.0
        return self.n_at_risk / len(self.patterns)

    def total_overkill_endpoints(self) -> int:
        """Sum of overkill endpoints across analysed patterns."""
        return sum(len(p.overkill_endpoints) for p in self.patterns)


def overkill_analysis(
    calculator: ScapCalculator,
    model: GridModel,
    pattern_set,
    sample: Optional[int] = None,
    setup_ns: float = SETUP_NS,
    period_ns: Optional[float] = None,
    env: Optional[ElectricalEnv] = None,
) -> OverkillReport:
    """Assess each (sampled) pattern for IR-induced false failures.

    An endpoint's budget is the capture period measured in its own
    clock frame: ``period - setup``.  The endpoint delays from
    :func:`~repro.core.irscale.ir_scaled_endpoint_comparison` are
    already relative to each endpoint's clock arrival, so the check is
    a direct comparison.

    ``period_ns`` defaults to the at-speed period; on a timing-closed
    design ATPG patterns carry slack there, so the interesting analysis
    is at a *faster-than-at-speed* period (pass e.g. 0.6x nominal, or a
    bin from :func:`~repro.core.ftas.ftas_analysis`): a pattern that
    fits the fast cycle nominally but misses it under its own IR-drop
    would kill a good chip.
    """
    if setup_ns < 0:
        raise ConfigError("setup must be non-negative")
    if period_ns is None:
        period_ns = calculator.period_ns
    if period_ns <= setup_ns:
        raise ConfigError("period must exceed setup")
    patterns = list(pattern_set)
    if sample is not None and sample < len(patterns):
        step = max(1, len(patterns) // sample)
        patterns = patterns[::step][:sample]

    budget = period_ns - setup_ns
    report = OverkillReport(period_ns=period_ns, setup_ns=setup_ns)
    for pattern in patterns:
        comp = ir_scaled_endpoint_comparison(
            calculator, model, pattern, env=env
        )
        nominal_fail: List[int] = []
        overkill: List[int] = []
        worst_margin = float("inf")
        worst_nominal = 0.0
        worst_scaled = 0.0
        active = 0
        for fi, nominal in comp.nominal_ns.items():
            if nominal == 0.0:
                continue  # non-active endpoint
            active += 1
            scaled = comp.scaled_ns.get(fi, nominal)
            worst_margin = min(worst_margin, budget - scaled)
            worst_nominal = max(worst_nominal, nominal)
            worst_scaled = max(worst_scaled, scaled)
            if nominal > budget:
                nominal_fail.append(fi)
            elif scaled > budget:
                overkill.append(fi)
        report.patterns.append(
            PatternOverkill(
                pattern_index=pattern.index,
                n_active_endpoints=active,
                nominal_failures=sorted(nominal_fail),
                overkill_endpoints=sorted(overkill),
                worst_margin_ns=(
                    worst_margin if active else float("inf")
                ),
                worst_nominal_ns=worst_nominal,
                worst_scaled_ns=worst_scaled,
            )
        )
    return report
