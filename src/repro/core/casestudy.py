"""One-call reproduction driver for the whole DAC 2007 case study.

``CaseStudy`` lazily builds and caches every stage of the paper's flow
on a synthetic Turbo-Eagle, and exposes one method per table/figure.
Examples and benchmarks are thin wrappers around this class, so every
number in EXPERIMENTS.md has a single authoritative source.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from contextlib import contextmanager

from ..atpg.faults import build_fault_universe
from ..config import ElectricalEnv
from ..context import RunContext, use_run_context
from ..errors import ConfigError
from ..obs import AnyTelemetry, current_telemetry
from ..pgrid.dynamic_ir import DynamicIrResult, dynamic_ir_for_pattern
from ..pgrid.grid import GridModel
from ..perf.cache import PatternProfileCache
from ..pgrid.statistical_ir import StatisticalIrRow, statistical_ir_analysis
from ..power.calculator import ScapCalculator
from ..reporting.checkpoint import CheckpointStore, config_fingerprint
from ..soc.generator import build_turbo_eagle
from .flow import ConventionalFlow, FlowResult, NoiseAwarePatternGenerator
from .irscale import IrScaledComparison, ir_scaled_endpoint_comparison
from .thresholds import derive_scap_thresholds
from .validation import ValidationReport, validate_pattern_set


class CaseStudy:
    """Reproduces the paper end to end on one generated SOC."""

    def __init__(
        self,
        scale: str = "small",
        seed: int = 2007,
        engine: str = "event",
        grid_nx: int = 24,
        grid_ny: int = 24,
        atpg_seed: int = 1,
        backtrack_limit: int = 100,
        target_statistical_drop_v: float = 0.15,
        n_workers: Union[int, str, None] = 1,
        checkpoint_dir: Optional[str] = None,
        drc: bool = True,
        telemetry: Optional[AnyTelemetry] = None,
        context: Optional[RunContext] = None,
    ):
        """``n_workers`` fans fault simulation and SCAP grading out
        across a process pool (see :mod:`repro.perf`); results are
        bit-identical to the serial default.  ``"auto"`` defers the
        batch/pool call per grading step to
        :mod:`repro.perf.dispatch`, which sizes the pool to the cores
        this process may actually use.

        ``checkpoint_dir`` makes the heavy stages durable: flows,
        per-stage ATPG results and SCAP validations persist there (via
        :class:`repro.reporting.CheckpointStore`), so a crashed or
        interrupted reproduction resumes instead of recomputing.  The
        store is fingerprinted with every constructor parameter that
        changes results; pointing it at a directory from a different
        configuration ignores the stale stages.

        ``drc`` gates every flow behind the static design-rule check:
        the first :meth:`conventional`/:meth:`staged` call raises
        :class:`~repro.errors.DrcError` if the generated design has
        unwaived ERROR violations (it never should — the gate exists so
        modified generators and hand-edited netlists fail fast).

        ``context`` (a :class:`~repro.context.RunContext`) is scoped
        over every heavy stage (flows, SCAP validation, scheduling), so
        one session object configures telemetry, execution policy,
        dispatch policy and the kernel cache for the whole case study;
        inherit-valued fields leave the ambient configuration alone.
        The legacy ``telemetry`` kwarg is deprecated sugar for
        ``context=RunContext(telemetry=...)``.
        """
        self.design = build_turbo_eagle(scale, seed)
        self.domain = self.design.dominant_domain()
        self.engine = engine
        self.atpg_seed = atpg_seed
        self.backtrack_limit = backtrack_limit
        self.n_workers = n_workers
        self.grid_nx = grid_nx
        self.grid_ny = grid_ny
        self.target_statistical_drop_v = target_statistical_drop_v
        self.checkpoint_dir = checkpoint_dir
        self._checkpoint: Optional[CheckpointStore] = None
        if checkpoint_dir is not None:
            fingerprint = config_fingerprint(
                scale=scale,
                seed=seed,
                engine=engine,
                grid=(grid_nx, grid_ny),
                atpg_seed=atpg_seed,
                backtrack_limit=backtrack_limit,
                target_statistical_drop_v=target_statistical_drop_v,
            )
            self._checkpoint = CheckpointStore(checkpoint_dir, fingerprint)
        self.context = context if context is not None else RunContext()
        if telemetry is not None:
            warnings.warn(
                "telemetry= is deprecated; pass "
                "context=RunContext(telemetry=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if self.context.telemetry is None:
                self.context = self.context.with_telemetry(telemetry)
        self.telemetry = self.context.telemetry
        self.drc_enabled = drc
        self._drc_gate_report = None
        self._model: Optional[GridModel] = None
        self._calculator: Optional[ScapCalculator] = None
        self._thresholds: Optional[Dict[str, float]] = None
        self._flows: Dict[str, FlowResult] = {}
        self._validations: Dict[str, ValidationReport] = {}

    # ------------------------------------------------------------------
    # static DRC
    # ------------------------------------------------------------------
    def _drc_gate(self) -> None:
        """Run the flow gate once, lazily, before the first flow."""
        if not self.drc_enabled or self._drc_gate_report is not None:
            return
        from .flow import run_drc_gate

        self._drc_gate_report = run_drc_gate(self.design)

    def drc_report(self, include_power: bool = True):
        """The full DRC report for this design (all rule families).

        With ``include_power`` the SCAP pre-screen runs against the
        Case-2 thresholds, which calibrates the power grid on first use
        (the expensive part — the flow gate itself never does this).
        Returns a :class:`~repro.drc.DrcReport`.
        """
        from ..drc import DrcContext, run_drc

        thresholds = self.thresholds_mw if include_power else None
        return run_drc(
            DrcContext.for_design(self.design, thresholds_mw=thresholds)
        )

    # ------------------------------------------------------------------
    # cached infrastructure
    # ------------------------------------------------------------------
    @property
    def model(self) -> GridModel:
        if self._model is None:
            self._model = GridModel.calibrated(
                self.design,
                target_worst_drop_v=self.target_statistical_drop_v,
                nx=self.grid_nx,
                ny=self.grid_ny,
            )
        return self._model

    @property
    def calculator(self) -> ScapCalculator:
        if self._calculator is None:
            self._calculator = ScapCalculator(
                self.design, self.domain, engine=self.engine,
                cache=PatternProfileCache(),
            )
        return self._calculator

    @property
    def thresholds_mw(self) -> Dict[str, float]:
        """Per-block SCAP limits from the Case-2 statistical analysis."""
        if self._thresholds is None:
            self._thresholds = derive_scap_thresholds(self.model, self.domain)
        return self._thresholds

    # ------------------------------------------------------------------
    # flows
    # ------------------------------------------------------------------
    def _stage_key(self, kind: str, name: str, max_patterns=None) -> str:
        key = f"{kind}_{name}"
        if max_patterns is not None:
            key += f"_max{max_patterns}"
        return key

    @contextmanager
    def _tel_scope(self):
        """Scope this study's session context over a heavy stage.

        Inherit-valued fields (the default) leave the ambient
        configuration alone, so a facade or policy installed by the
        caller still applies; yields the effective telemetry facade.
        """
        with use_run_context(self.context):
            yield current_telemetry()

    def conventional(self, max_patterns: Optional[int] = None) -> FlowResult:
        """The random-fill baseline flow (cached + checkpointed)."""
        if "conventional" not in self._flows:
            self._drc_gate()
            key = self._stage_key("flow", "conventional", max_patterns)
            cached = (
                self._checkpoint.try_load(key)
                if self._checkpoint is not None else None
            )
            if cached is not None:
                self._flows["conventional"] = cached
            else:
                flow = ConventionalFlow(
                    self.design,
                    self.domain,
                    seed=self.atpg_seed,
                    backtrack_limit=self.backtrack_limit,
                    n_workers=self.n_workers,
                )
                with self._tel_scope() as tel:
                    with tel.span("flow.run", flow="conventional"):
                        result = flow.run(max_patterns=max_patterns)
                if self._checkpoint is not None:
                    self._checkpoint.save(
                        key, result, meta={"patterns": result.n_patterns}
                    )
                self._flows["conventional"] = result
        return self._flows["conventional"]

    def staged(self, max_patterns: Optional[int] = None) -> FlowResult:
        """The paper's staged fill-0 noise-aware flow (cached +
        checkpointed, both whole-flow and per stage)."""
        if "staged" not in self._flows:
            self._drc_gate()
            key = self._stage_key("flow", "staged", max_patterns)
            cached = (
                self._checkpoint.try_load(key)
                if self._checkpoint is not None else None
            )
            if cached is not None:
                self._flows["staged"] = cached
            else:
                flow = NoiseAwarePatternGenerator(
                    self.design,
                    self.domain,
                    seed=self.atpg_seed,
                    backtrack_limit=self.backtrack_limit,
                    n_workers=self.n_workers,
                )
                # Stage-level checkpoints only for the unbounded flow:
                # stage keys do not encode a pattern budget, and mixing
                # budgets in one store would alias different results.
                stage_checkpoint = (
                    self._checkpoint if max_patterns is None else None
                )
                with self._tel_scope() as tel:
                    with tel.span("flow.run", flow="noise_aware_staged"):
                        result = flow.run(
                            max_patterns=max_patterns,
                            checkpoint=stage_checkpoint,
                        )
                if self._checkpoint is not None:
                    self._checkpoint.save(
                        key, result, meta={"patterns": result.n_patterns}
                    )
                self._flows["staged"] = result
        return self._flows["staged"]

    def validation(self, flow_name: str) -> ValidationReport:
        """SCAP screening of one flow's pattern set (cached +
        checkpointed per chunk of patterns)."""
        if flow_name not in self._validations:
            flow = (
                self.conventional()
                if flow_name == "conventional"
                else self.staged()
            )
            key = self._stage_key("validation", flow_name)
            cached = (
                self._checkpoint.try_load(key)
                if self._checkpoint is not None else None
            )
            if cached is not None:
                self._validations[flow_name] = cached
            else:
                with self._tel_scope():
                    report = validate_pattern_set(
                        self.calculator, flow.pattern_set,
                        self.thresholds_mw,
                        n_workers=self.n_workers,
                        checkpoint=self._checkpoint,
                        checkpoint_key=key,
                    )
                if self._checkpoint is not None:
                    self._checkpoint.save(
                        key, report,
                        meta={"violations": len(report.violations)},
                    )
                self._validations[flow_name] = report
        return self._validations[flow_name]

    # ------------------------------------------------------------------
    # Table 1 / Table 2
    # ------------------------------------------------------------------
    def table1(self) -> Dict[str, int]:
        """Design characteristics, including the TDF universe size."""
        out = dict(self.design.characteristics())
        out["transition_delay_faults"] = len(
            build_fault_universe(self.design.netlist)
        )
        return out

    def table2(self) -> List[Dict[str, object]]:
        return self.design.domain_table()

    # ------------------------------------------------------------------
    # Table 3
    # ------------------------------------------------------------------
    def table3(self) -> Dict[str, List[StatisticalIrRow]]:
        """Statistical IR-drop, full-cycle vs half-cycle windows."""
        return {
            "case1_full_cycle": statistical_ir_analysis(
                self.model, self.domain, window_fraction=1.0,
                include_chip_row=True,
            ),
            "case2_half_cycle": statistical_ir_analysis(
                self.model, self.domain, window_fraction=0.5,
                include_chip_row=True,
            ),
        }

    # ------------------------------------------------------------------
    # Table 4: CAP vs SCAP for one conventional pattern
    # ------------------------------------------------------------------
    def table4(self) -> Dict[str, Dict[str, float]]:
        """CAP- vs SCAP-window power and worst IR-drop for one pattern.

        Following the paper, the subject is a conventional random-fill
        pattern (we pick the one whose STW is closest to the half-cycle,
        like the paper's 8.34 ns example at a 20 ns period).
        """
        report = self.validation("conventional")
        period = self.calculator.period_ns
        stws = np.array([p.stw_ns for p in report.profiles])
        if stws.size == 0:
            raise ConfigError("conventional flow produced no patterns")
        pick = int(np.abs(stws - period / 2.0).argmin())
        profile = report.profiles[pick]
        timing = self.calculator.simulate_pattern(
            self.conventional().pattern_set[pick].v1_dict()
        )
        ir_cap = dynamic_ir_for_pattern(
            self.model, timing, window_ns=period, domain=self.domain
        )
        ir_scap = dynamic_ir_for_pattern(self.model, timing, domain=self.domain)
        return {
            "CAP": {
                "pattern_index": pick,
                "window_ns": period,
                "avg_power_mw": profile.cap_mw(),
                "worst_drop_vdd_v": ir_cap.worst_vdd_v,
                "worst_drop_vss_v": ir_cap.worst_vss_v,
            },
            "SCAP": {
                "pattern_index": pick,
                "window_ns": profile.stw_ns,
                "avg_power_mw": profile.scap_mw(),
                "worst_drop_vdd_v": ir_scap.worst_vdd_v,
                "worst_drop_vss_v": ir_scap.worst_vss_v,
            },
        }

    # ------------------------------------------------------------------
    # Figures
    # ------------------------------------------------------------------
    def figure1(self) -> str:
        """Floorplan rendering."""
        return self.design.floorplan.render_ascii()

    def figure2(self) -> Dict[str, object]:
        """Per-pattern SCAP in B5 for the conventional flow."""
        report = self.validation("conventional")
        return {
            "scap_mw_b5": report.scap_series("B5"),
            "threshold_mw": self.thresholds_mw["B5"],
            "violating_patterns": report.violating_patterns("B5"),
            "n_patterns": report.n_patterns,
        }

    def figure3(self) -> Dict[str, Dict[str, object]]:
        """Dynamic IR-drop of the P1 (worst) and P2 (near-threshold)
        conventional patterns."""
        report = self.validation("conventional")
        picks = report.extreme_patterns("B5")
        out: Dict[str, Dict[str, object]] = {}
        for label, idx in picks.items():
            pattern = self.conventional().pattern_set[idx]
            profile, timing = self.calculator.profile_pattern_with_timing(
                pattern
            )
            ir = dynamic_ir_for_pattern(self.model, timing, domain=self.domain)
            out[label] = {
                "pattern_index": idx,
                "scap_mw_b5": profile.scap_mw("B5"),
                "stw_ns": profile.stw_ns,
                "ir": ir,
                "worst_drop_vdd_v": ir.worst_vdd_v,
                "worst_drop_vss_v": ir.worst_vss_v,
                "red_fraction": ir.red_fraction(),
            }
        return out

    def figure4(self) -> Dict[str, List[Tuple[int, float]]]:
        """Coverage curves: conventional vs staged."""
        return {
            "conventional": self.conventional().coverage_curve(),
            "staged": self.staged().coverage_curve(),
        }

    def figure6(self) -> Dict[str, object]:
        """Per-pattern SCAP in B5 for the staged flow."""
        report = self.validation("staged")
        staged = self.staged()
        return {
            "scap_mw_b5": report.scap_series("B5"),
            "threshold_mw": self.thresholds_mw["B5"],
            "violating_patterns": report.violating_patterns("B5"),
            "n_patterns": report.n_patterns,
            "step_boundaries": staged.step_boundaries,
        }

    def figure7(self, env: Optional[ElectricalEnv] = None) -> IrScaledComparison:
        """Endpoint delays with vs without IR-drop for one staged pattern.

        The paper picks a pattern that tests many B5 faults yet stays
        under the SCAP threshold: we take the staged flow's B5 step and
        choose the highest-SCAP pattern still below the B5 limit.
        """
        staged = self.staged()
        report = self.validation("staged")
        threshold = self.thresholds_mw["B5"]
        b5_start = staged.step_boundaries[-1] if staged.step_boundaries else 0
        series = report.scap_series("B5")
        candidates = [
            i
            for i in range(b5_start, len(series))
            if series[i] <= threshold
        ]
        if not candidates:
            candidates = list(range(b5_start, len(series))) or [0]
        pick = max(candidates, key=lambda i: series[i])
        pattern = staged.pattern_set[pick]
        return ir_scaled_endpoint_comparison(
            self.calculator, self.model, pattern, env=env
        )

    # ------------------------------------------------------------------
    # SOC test scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        power_budget_mw: Optional[float] = None,
        strategy: str = "binpack",
        tam_width: Optional[int] = None,
        flow_name: str = "staged",
    ):
        """Power/TAM-constrained SOC test schedule for one flow.

        Per-block test powers are the sound chip-wide
        :class:`~repro.power.static_bound.StaticScapBound` bounds,
        test times come from wrapper partitioning of the flow's
        per-block pattern counts, and *strategy* (``"binpack"`` or
        ``"greedy"``) packs the candidate rectangles under the power
        envelope and the design's TAM width (override with
        *tam_width*).

        Without *power_budget_mw* a feasible default is derived from
        the bounds themselves: 60 % of the summed per-block minima
        (some parallelism possible, full parallelism not), floored just
        above the hungriest single block.  Returns a validated
        :class:`~repro.core.scheduling.TestSchedule`.
        """
        from ..power.static_bound import StaticScapBound
        from .scheduling import ScheduleBudget, get_scheduler, specs_from_flow

        flow = (
            self.conventional()
            if flow_name == "conventional"
            else self.staged()
        )
        with self._tel_scope() as tel:
            with tel.span("flow.schedule", strategy=strategy):
                bound = StaticScapBound(self.design, self.domain)
                powers = bound.test_power_bounds_mw()
                specs = specs_from_flow(self.design, flow, powers)
                budget = power_budget_mw
                if budget is None:
                    floor = max(s.min_power_mw for s in specs)
                    budget = max(
                        0.6 * sum(s.min_power_mw for s in specs),
                        floor * 1.01,
                    )
                width = (
                    tam_width
                    if tam_width is not None
                    else self.design.tam_width
                )
                schedule = get_scheduler(strategy).schedule(
                    specs, ScheduleBudget(power_mw=budget, tam_width=width)
                )
                schedule.validate()
        return schedule

    # ------------------------------------------------------------------
    def export(self, out_dir: str) -> List[str]:
        """Write every table/figure artefact to *out_dir* (see
        :func:`repro.reporting.export_case_study`)."""
        from ..reporting import export_case_study

        return export_case_study(self, out_dir)

    # ------------------------------------------------------------------
    def headline_comparison(self) -> Dict[str, object]:
        """The paper's bottom line, both flows side by side."""
        conv = self.validation("conventional")
        stag = self.validation("staged")
        return {
            "conventional_patterns": conv.n_patterns,
            "staged_patterns": stag.n_patterns,
            "pattern_increase_pct": 100.0
            * (stag.n_patterns - conv.n_patterns)
            / max(1, conv.n_patterns),
            "conventional_violations_b5": len(conv.violating_patterns("B5")),
            "staged_violations_b5": len(stag.violating_patterns("B5")),
            "conventional_violation_fraction_b5": conv.violation_fraction("B5"),
            "staged_violation_fraction_b5": stag.violation_fraction("B5"),
            "conventional_coverage": self.conventional().test_coverage,
            "staged_coverage": self.staged().test_coverage,
        }
