"""The paper's contribution: supply-noise-aware TDF pattern generation.

* :mod:`~repro.core.thresholds` — per-block SCAP limits from the
  statistical (vectorless) half-cycle analysis,
* :mod:`~repro.core.flow` — the conventional random-fill baseline and
  the staged fill-0 noise-tolerant generation flow,
* :mod:`~repro.core.validation` — SCAP screening of a pattern set,
* :mod:`~repro.core.irscale` — IR-drop-aware delay-scaled re-simulation
  of selected patterns (endpoint delay comparison, Figure 7),
* :mod:`~repro.core.casestudy` — a one-call driver reproducing every
  table and figure of the paper on the synthetic SOC.
"""

from .thresholds import derive_scap_thresholds
from .flow import (
    ConventionalFlow,
    FlowResult,
    NoiseAwarePatternGenerator,
    STAGE_PLAN_TURBO_EAGLE,
    run_noise_tolerant_flow,
)
from .validation import ScapViolation, ValidationReport, validate_pattern_set
from .irscale import IrScaledComparison, ir_scaled_endpoint_comparison
from .casestudy import CaseStudy
from .scheduling import (
    BinPackingScheduler,
    BlockTestSpec,
    BlockTestTask,
    GreedyScheduler,
    Placement,
    ScheduleBudget,
    ScheduleSession,
    Scheduler,
    TamCandidate,
    TestSchedule,
    available_schedulers,
    get_scheduler,
    register_scheduler,
    schedule_block_tests,
    schedule_tests,
    specs_from_design,
    specs_from_flow,
    tasks_from_flow,
)
from .ftas import FtasReport, PatternFtas, ftas_analysis
from .fullchip import DomainOutcome, FullChipResult, run_full_chip
from .binning import BinningResult, binning_simulation, guardband_for_yield
from .overkill import OverkillReport, PatternOverkill, overkill_analysis
from .repair import RepairOutcome, repair_pattern_set

__all__ = [
    "BinPackingScheduler",
    "BinningResult",
    "BlockTestSpec",
    "BlockTestTask",
    "GreedyScheduler",
    "Placement",
    "ScheduleBudget",
    "Scheduler",
    "TamCandidate",
    "available_schedulers",
    "get_scheduler",
    "register_scheduler",
    "schedule_tests",
    "specs_from_design",
    "specs_from_flow",
    "binning_simulation",
    "guardband_for_yield",
    "CaseStudy",
    "DomainOutcome",
    "FtasReport",
    "FullChipResult",
    "OverkillReport",
    "PatternFtas",
    "PatternOverkill",
    "RepairOutcome",
    "overkill_analysis",
    "ftas_analysis",
    "repair_pattern_set",
    "run_full_chip",
    "ConventionalFlow",
    "FlowResult",
    "IrScaledComparison",
    "NoiseAwarePatternGenerator",
    "STAGE_PLAN_TURBO_EAGLE",
    "ScapViolation",
    "ScheduleSession",
    "TestSchedule",
    "ValidationReport",
    "derive_scap_thresholds",
    "ir_scaled_endpoint_comparison",
    "run_noise_tolerant_flow",
    "schedule_block_tests",
    "tasks_from_flow",
    "validate_pattern_set",
]
