"""Power-constrained SOC test scheduling.

The paper's introduction frames the noise problem partly through SOC
test scheduling (its refs [5][6]): blocks are tested in parallel to cut
test time, but the *sum* of their test power must stay under the chip's
functional power threshold.  This module provides that scheduler — the
natural consumer of the per-block power numbers the rest of the library
produces.

``schedule_block_tests`` packs block test tasks into parallel sessions
under a power budget with the classic greedy longest-task-first
heuristic, and reports the makespan against the serial baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigError


@dataclass(frozen=True)
class BlockTestTask:
    """One block's test session requirements.

    ``test_time_us`` is typically ``patterns x (shift + capture) time``;
    ``power_mw`` the block's average test power (e.g. its SCAP level).
    """

    block: str
    test_time_us: float
    power_mw: float

    def __post_init__(self) -> None:
        if self.test_time_us <= 0:
            raise ConfigError(f"{self.block}: test time must be positive")
        if self.power_mw < 0:
            raise ConfigError(f"{self.block}: power must be >= 0")


@dataclass
class ScheduleSession:
    """A set of blocks tested in parallel."""

    tasks: List[BlockTestTask] = field(default_factory=list)

    @property
    def power_mw(self) -> float:
        """Combined power of the session's parallel tasks."""
        return sum(t.power_mw for t in self.tasks)

    @property
    def time_us(self) -> float:
        """Session duration: its longest task."""
        return max((t.test_time_us for t in self.tasks), default=0.0)


@dataclass
class TestSchedule:
    """A complete schedule: ordered sessions."""

    sessions: List[ScheduleSession]
    power_budget_mw: float

    @property
    def makespan_us(self) -> float:
        """Total test time: sessions run back to back."""
        return sum(s.time_us for s in self.sessions)

    @property
    def peak_power_mw(self) -> float:
        """Worst session power (must respect the budget)."""
        return max((s.power_mw for s in self.sessions), default=0.0)

    @property
    def serial_time_us(self) -> float:
        """Baseline: every block tested alone, sequentially."""
        return sum(t.test_time_us for s in self.sessions for t in s.tasks)

    @property
    def speedup(self) -> float:
        """Serial time over makespan."""
        if self.makespan_us == 0:
            return 1.0
        return self.serial_time_us / self.makespan_us

    def blocks(self) -> List[str]:
        return [t.block for s in self.sessions for t in s.tasks]


def schedule_block_tests(
    tasks: Sequence[BlockTestTask],
    power_budget_mw: float,
) -> TestSchedule:
    """Greedy longest-task-first packing under a session power budget.

    Every session's total power stays <= *power_budget_mw*.  Tasks are
    considered in decreasing test time; each goes into the first session
    with power headroom, or opens a new one.  (First-fit-decreasing —
    the standard heuristic for this NP-hard packing.)

    Raises
    ------
    ConfigError
        If any single task exceeds the budget (it could never run), or
        two tasks share a block name.
    """
    if power_budget_mw <= 0:
        raise ConfigError("power budget must be positive")
    names = [t.block for t in tasks]
    if len(set(names)) != len(names):
        raise ConfigError("duplicate block in task list")
    for task in tasks:
        if task.power_mw > power_budget_mw:
            raise ConfigError(
                f"block {task.block!r} needs {task.power_mw:.2f} mW, over "
                f"the {power_budget_mw:.2f} mW budget"
            )

    ordered = sorted(tasks, key=lambda t: -t.test_time_us)
    sessions: List[ScheduleSession] = []
    for task in ordered:
        placed = False
        for session in sessions:
            if session.power_mw + task.power_mw <= power_budget_mw:
                session.tasks.append(task)
                placed = True
                break
        if not placed:
            sessions.append(ScheduleSession([task]))
    return TestSchedule(sessions, power_budget_mw)


def tasks_from_flow(
    design,
    flow_result,
    scap_by_block_mw: Dict[str, float],
    shift_period_ns: float = 100.0,
    capture_period_ns: float = 20.0,
) -> List[BlockTestTask]:
    """Build scheduling tasks from a staged flow's per-step patterns.

    Each step's pattern count becomes its blocks' test time (patterns x
    (chain length x shift period + capture)), split evenly across the
    step's blocks; power is the caller-provided per-block level
    (thresholds or measured SCAP).
    """
    if design.scan is None:
        raise ConfigError("design has no scan configuration")
    max_chain = max(c.length for c in design.scan.chains)
    per_pattern_us = (
        max_chain * shift_period_ns + capture_period_ns
    ) / 1000.0

    tasks: List[BlockTestTask] = []
    boundaries = list(flow_result.step_boundaries) + [
        flow_result.n_patterns
    ]
    for step_idx, blocks in enumerate(flow_result.step_blocks):
        n_patterns = boundaries[step_idx + 1] - boundaries[step_idx]
        if n_patterns <= 0:
            continue
        share = max(1, n_patterns // max(1, len(blocks)))
        for block in blocks:
            tasks.append(
                BlockTestTask(
                    block=block,
                    test_time_us=share * per_pattern_us,
                    power_mw=scap_by_block_mw.get(block, 0.0),
                )
            )
    return tasks
