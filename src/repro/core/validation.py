"""SCAP screening of a pattern set (paper Section 3.2, Figures 2 & 6).

Runs the SCAP calculator over every pattern and flags, per block, the
patterns whose SCAP exceeds the block's statistical threshold — the
patterns at risk of IR-drop-induced false delay failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..power.calculator import ScapCalculator
from ..power.scap import PatternPowerProfile


@dataclass(frozen=True)
class ScapViolation:
    """One pattern exceeding one block's SCAP threshold."""

    pattern_index: int
    block: str
    scap_mw: float
    threshold_mw: float

    @property
    def excess_ratio(self) -> float:
        return self.scap_mw / self.threshold_mw


@dataclass
class ValidationReport:
    """SCAP screening result for a whole pattern set."""

    domain: str
    thresholds_mw: Dict[str, float]
    profiles: List[PatternPowerProfile]
    violations: List[ScapViolation] = field(default_factory=list)

    @property
    def n_patterns(self) -> int:
        return len(self.profiles)

    def violating_patterns(self, block: Optional[str] = None) -> List[int]:
        """Sorted indexes of patterns violating (optionally one block)."""
        hits = {
            v.pattern_index
            for v in self.violations
            if block is None or v.block == block
        }
        return sorted(hits)

    def violation_fraction(self, block: Optional[str] = None) -> float:
        if not self.profiles:
            return 0.0
        return len(self.violating_patterns(block)) / len(self.profiles)

    def scap_series(self, block: Optional[str] = None) -> np.ndarray:
        """Per-pattern SCAP (mW) — the Figure 2 / Figure 6 series."""
        return np.array([p.scap_mw(block) for p in self.profiles])

    def extreme_patterns(self, block: str) -> Dict[str, int]:
        """The paper's P1/P2 pick: the worst-SCAP pattern and the
        pattern closest to (but above or near) the block threshold."""
        series = self.scap_series(block)
        if series.size == 0:
            raise ConfigError("no profiles to pick extremes from")
        p1 = int(series.argmax())
        threshold = self.thresholds_mw[block]
        p2 = int(np.abs(series - threshold).argmin())
        return {"P1": p1, "P2": p2}


def validate_pattern_set(
    calculator: ScapCalculator,
    pattern_set,
    thresholds_mw: Dict[str, float],
    n_workers: int = 1,
) -> ValidationReport:
    """Profile every pattern and screen against per-block thresholds.

    Grading runs through the calculator's batched
    :meth:`~repro.power.calculator.ScapCalculator.profile_patterns`
    path (machine-word logic-simulation lanes, optional worker pool,
    profile cache) — bit-exact with per-pattern profiling.
    """
    profiles = calculator.profile_patterns(pattern_set, n_workers=n_workers)
    violations: List[ScapViolation] = []
    for profile in profiles:
        for block, limit in thresholds_mw.items():
            scap = profile.scap_mw(block)
            if scap > limit:
                violations.append(
                    ScapViolation(profile.pattern_index, block, scap, limit)
                )
    return ValidationReport(
        domain=calculator.domain,
        thresholds_mw=dict(thresholds_mw),
        profiles=profiles,
        violations=violations,
    )
