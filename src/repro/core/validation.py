"""SCAP screening of a pattern set (paper Section 3.2, Figures 2 & 6).

Runs the SCAP calculator over every pattern and flags, per block, the
patterns whose SCAP exceeds the block's statistical threshold — the
patterns at risk of IR-drop-induced false delay failures.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import ConfigError
from ..obs import current_telemetry
from ..perf.cache import digest_key
from ..power.calculator import ScapCalculator, _normalize_patterns
from ..power.scap import PatternPowerProfile
from ..reporting.checkpoint import CheckpointStore


@dataclass(frozen=True)
class ScapViolation:
    """One pattern exceeding one block's SCAP threshold."""

    pattern_index: int
    block: str
    scap_mw: float
    threshold_mw: float

    @property
    def excess_ratio(self) -> float:
        return self.scap_mw / self.threshold_mw


@dataclass
class ValidationReport:
    """SCAP screening result for a whole pattern set."""

    domain: str
    thresholds_mw: Dict[str, float]
    profiles: List[PatternPowerProfile]
    violations: List[ScapViolation] = field(default_factory=list)

    @property
    def n_patterns(self) -> int:
        return len(self.profiles)

    def violating_patterns(self, block: Optional[str] = None) -> List[int]:
        """Sorted indexes of patterns violating (optionally one block)."""
        hits = {
            v.pattern_index
            for v in self.violations
            if block is None or v.block == block
        }
        return sorted(hits)

    def violation_fraction(self, block: Optional[str] = None) -> float:
        if not self.profiles:
            return 0.0
        return len(self.violating_patterns(block)) / len(self.profiles)

    def scap_series(self, block: Optional[str] = None) -> np.ndarray:
        """Per-pattern SCAP (mW) — the Figure 2 / Figure 6 series."""
        return np.array([p.scap_mw(block) for p in self.profiles])

    def extreme_patterns(self, block: str) -> Dict[str, int]:
        """The paper's P1/P2 pick: the worst-SCAP pattern and the
        pattern closest to (but above or near) the block threshold."""
        series = self.scap_series(block)
        if series.size == 0:
            raise ConfigError("no profiles to pick extremes from")
        p1 = int(series.argmax())
        threshold = self.thresholds_mw[block]
        p2 = int(np.abs(series - threshold).argmin())
        return {"P1": p1, "P2": p2}


def validate_pattern_set(
    calculator: ScapCalculator,
    pattern_set,
    thresholds_mw: Dict[str, float],
    n_workers: Union[int, str, None] = 1,
    checkpoint: Optional[CheckpointStore] = None,
    checkpoint_key: str = "validation",
    checkpoint_chunk: int = 256,
) -> ValidationReport:
    """Profile every pattern and screen against per-block thresholds.

    Grading runs through the calculator's batched
    :meth:`~repro.power.calculator.ScapCalculator.profile_patterns`
    path (machine-word logic-simulation lanes, optional worker pool,
    profile cache) — bit-exact with per-pattern profiling.
    ``n_workers="auto"`` defers the batch/pool call to
    :mod:`repro.perf.dispatch`.

    With a *checkpoint* store the pattern set is graded in chunks of
    *checkpoint_chunk* patterns and every finished chunk persists its
    SCAP profiles; an interrupted screening rerun over the same store
    resumes at the first unfinished chunk.  Chunk keys embed a digest
    of the chunk's launch states plus the calculator's cache context,
    so stale or foreign checkpoints are never reused.
    """
    tel = current_telemetry()
    with tel.span(
        "flow.validate", domain=calculator.domain, workers=n_workers
    ):
        if checkpoint is not None:
            profiles = _profile_with_checkpoint(
                calculator, pattern_set, n_workers,
                checkpoint, checkpoint_key, checkpoint_chunk,
            )
        else:
            profiles = calculator.profile_patterns(
                pattern_set, n_workers=n_workers
            )
        violations: List[ScapViolation] = []
        for profile in profiles:
            for block, limit in thresholds_mw.items():
                scap = profile.scap_mw(block)
                if scap > limit:
                    violations.append(
                        ScapViolation(
                            profile.pattern_index, block, scap, limit
                        )
                    )
        for violation in violations:
            tel.count("scap.violations", block=violation.block)
    return ValidationReport(
        domain=calculator.domain,
        thresholds_mw=dict(thresholds_mw),
        profiles=profiles,
        violations=violations,
    )


def _profile_with_checkpoint(
    calculator: ScapCalculator,
    pattern_set,
    n_workers: Union[int, str, None],
    checkpoint: CheckpointStore,
    key_prefix: str,
    chunk: int,
) -> List[PatternPowerProfile]:
    """Chunked profiling with per-chunk durable results.

    Chunk size is kept a multiple of the grading lane width upstream
    (the default 256 = 4 lanes), and profiles are re-stamped with their
    global pattern indices, so the output is identical to one
    uninterrupted :meth:`profile_patterns` call.
    """
    indices, matrix = _normalize_patterns(
        pattern_set, calculator.design.netlist.n_flops
    )
    chunk = max(1, int(chunk))
    profiles: List[PatternPowerProfile] = []
    for start in range(0, matrix.shape[0], chunk):
        stop = min(start + chunk, matrix.shape[0])
        sub = matrix[start:stop]
        digest = digest_key(
            np.ascontiguousarray(sub).tobytes(),
            calculator._cache_context + (start, stop),
        )
        key = f"{key_prefix}_rows{start}-{stop}_{digest[:12]}"
        part = checkpoint.try_load(key)
        if part is not None:
            current_telemetry().count("flow.checkpoint_resumes")
        else:
            part = calculator.profile_patterns(sub, n_workers=n_workers)
            checkpoint.save(key, part, meta={"rows": [start, stop]})
        profiles.extend(
            dataclasses.replace(p, pattern_index=indices[start + i])
            for i, p in enumerate(part)
        )
    return profiles
