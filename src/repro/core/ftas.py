"""Faster-than-at-speed (FTAS) analysis with IR-drop awareness.

The authors' companion work (their reference [20], ICCAD'06) tests
patterns *above* the functional frequency to catch small delay defects,
and shows IR-drop effects must be considered when choosing those
frequencies.  This module provides the core of that flow on top of the
reproduction:

for every pattern, the minimum safe capture period is the worst
endpoint path delay (measured against each endpoint's own clock
arrival) plus setup plus margin — computed both with nominal delays and
with the pattern's own IR-drop-scaled delays.  Patterns are then binned
into a small set of test frequencies, and the IR-aware binning shows
how supply noise eats into the faster-than-at-speed headroom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import ElectricalEnv
from ..errors import ConfigError
from ..pgrid.grid import GridModel
from ..power.calculator import ScapCalculator
from ..sim.sta import SETUP_NS
from .irscale import IrScaledComparison, ir_scaled_endpoint_comparison


@dataclass
class PatternFtas:
    """Per-pattern FTAS numbers."""

    pattern_index: int
    min_period_nominal_ns: float
    min_period_ir_ns: float
    setup_ns: float

    def max_freq_mhz(self, ir_aware: bool = True) -> float:
        """Fastest safe test frequency for this pattern."""
        period = (
            self.min_period_ir_ns if ir_aware else self.min_period_nominal_ns
        )
        if period <= 0:
            return float("inf")
        return 1000.0 / period

    @property
    def ir_headroom_loss_pct(self) -> float:
        """How much IR-drop reduces the safe overclock, in percent."""
        """How much IR-drop reduces the safe overclock, in percent."""
        if self.min_period_nominal_ns <= 0:
            return 0.0
        return 100.0 * (
            self.min_period_ir_ns - self.min_period_nominal_ns
        ) / self.min_period_nominal_ns


@dataclass
class FtasReport:
    """FTAS analysis over a pattern sample."""

    nominal_period_ns: float
    patterns: List[PatternFtas] = field(default_factory=list)

    def bin_patterns(
        self, frequencies_mhz: Sequence[float], ir_aware: bool = True
    ) -> Dict[float, int]:
        """Count patterns testable at each frequency (highest first).

        A pattern lands in the fastest frequency whose period covers its
        minimum safe period; patterns slower than every bin land in the
        nominal-frequency bin implicitly (not counted here).
        """
        ordered = sorted(frequencies_mhz, reverse=True)
        bins = {f: 0 for f in ordered}
        for p in self.patterns:
            fmax = p.max_freq_mhz(ir_aware)
            for f in ordered:
                if fmax >= f:
                    bins[f] += 1
                    break
        return bins

    def mean_headroom_loss_pct(self) -> float:
        if not self.patterns:
            return 0.0
        return float(np.mean([p.ir_headroom_loss_pct for p in self.patterns]))


def ftas_analysis(
    calculator: ScapCalculator,
    model: GridModel,
    pattern_set,
    sample: Optional[int] = None,
    setup_ns: float = SETUP_NS,
    margin_ns: float = 0.1,
    env: Optional[ElectricalEnv] = None,
) -> FtasReport:
    """Run FTAS analysis over (a sample of) a pattern set.

    Each analysed pattern costs two timing simulations plus one rail
    solve, so pass ``sample`` for large sets.
    """
    if margin_ns < 0 or setup_ns < 0:
        raise ConfigError("setup/margin must be non-negative")
    patterns = list(pattern_set)
    if sample is not None and sample < len(patterns):
        step = max(1, len(patterns) // sample)
        patterns = patterns[::step][:sample]

    report = FtasReport(nominal_period_ns=calculator.period_ns)
    for pattern in patterns:
        comp = ir_scaled_endpoint_comparison(
            calculator, model, pattern, env=env
        )
        nominal = _min_period(comp, scaled=False, setup_ns=setup_ns,
                              margin_ns=margin_ns)
        ir = _min_period(comp, scaled=True, setup_ns=setup_ns,
                         margin_ns=margin_ns)
        report.patterns.append(
            PatternFtas(
                pattern_index=pattern.index,
                min_period_nominal_ns=nominal,
                min_period_ir_ns=ir,
                setup_ns=setup_ns,
            )
        )
    return report


def _min_period(
    comp: IrScaledComparison,
    scaled: bool,
    setup_ns: float,
    margin_ns: float,
) -> float:
    delays = comp.scaled_ns if scaled else comp.nominal_ns
    active = [d for d in delays.values() if d > 0.0]
    if not active:
        return 0.0
    return max(active) + setup_ns + margin_ns
