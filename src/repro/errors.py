"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class NetlistError(ReproError):
    """A structural problem in a gate-level netlist.

    Raised for duplicate drivers, dangling nets, unknown cell kinds,
    combinational loops and similar integrity violations.
    """


class LibraryError(ReproError):
    """An unknown cell was requested from a standard-cell library."""


class ScanError(ReproError):
    """A design-for-test (scan) structure is inconsistent.

    Examples: a flop assigned to two chains, a shift applied with the
    wrong vector length, or a chain referencing a non-scan flop.
    """


class DrcError(ReproError):
    """A design failed the static design-rule check gate.

    Raised by the flow/case-study entry points when unwaived
    ERROR-severity violations remain; carries the offending
    :class:`~repro.drc.violation.DrcReport` as ``report`` so callers
    can inspect or persist the findings.
    """

    def __init__(self, message: str, report: "object | None" = None):
        super().__init__(message)
        self.report = report


class SimulationError(ReproError):
    """A simulation could not be carried out on the given design/stimulus."""


class AtpgError(ReproError):
    """Test generation failed in a way that is not a normal abort.

    Normal PODEM aborts (backtrack limit) are reported through return
    values, not exceptions; this exception marks malformed fault targets
    or inconsistent two-frame models.
    """


class PowerGridError(ReproError):
    """The power-grid model is malformed or the solve is ill-conditioned."""


class ConfigError(ReproError):
    """An invalid parameter value was supplied to a constructor or flow."""


class TransientError(ReproError):
    """A failure that is expected to succeed if simply retried.

    Tasks running under :func:`repro.perf.resilient.resilient_map` may
    raise this (or a subclass) to request a backoff-and-retry instead of
    failing the whole map; any other task exception is treated as a
    genuine bug and propagates.  The chaos harness's ``fail`` injection
    raises it to exercise the retry path.
    """


class ExecutionError(ReproError):
    """A work chunk failed inside the fault-tolerant execution layer.

    Carries enough context for callers to tell *what* failed and *how
    often* it was attempted: ``chunk_index`` (position of the chunk in
    the submitted item list), ``attempts`` (tries consumed, first try
    included) and ``cause`` (the underlying exception, also chained as
    ``__cause__`` when raised via ``raise ... from``).
    """

    def __init__(
        self,
        message: str,
        *,
        chunk_index: "int | None" = None,
        attempts: "int | None" = None,
        cause: "BaseException | None" = None,
    ):
        super().__init__(message)
        self.chunk_index = chunk_index
        self.attempts = attempts
        self.cause = cause


class WorkerCrashError(ExecutionError):
    """A worker process died (SIGKILL, OOM, segfault) while running a
    chunk — the task may be fine; the *infrastructure* failed."""


class TaskTimeoutError(ExecutionError):
    """A chunk exceeded its per-task timeout and its worker was
    cancelled.  ``timeout_s`` records the limit that was breached."""

    def __init__(self, message: str, *, timeout_s: "float | None" = None, **kw):
        super().__init__(message, **kw)
        self.timeout_s = timeout_s


class CheckpointError(ReproError):
    """A checkpoint store is unreadable or inconsistent with the run."""


class ServiceError(ReproError):
    """Base class for failures of the ATPG job service layer."""


class ServiceBusyError(ServiceError):
    """The job queue is at its depth limit; the submission was refused.

    Back-pressure is explicit: a submission that cannot be accepted is
    *rejected loudly* (carrying ``depth`` and ``limit``), never dropped
    silently.  Callers retry later or shed load upstream.
    """

    def __init__(self, message: str, *, depth: "int | None" = None,
                 limit: "int | None" = None):
        super().__init__(message)
        self.depth = depth
        self.limit = limit


class JobNotFoundError(ServiceError):
    """No job with the requested id exists in the store."""


class LeaseLostError(ServiceError):
    """A worker's lease on a shard expired (or was fenced off) while it
    was still working; its result must be discarded, not committed."""
