"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class NetlistError(ReproError):
    """A structural problem in a gate-level netlist.

    Raised for duplicate drivers, dangling nets, unknown cell kinds,
    combinational loops and similar integrity violations.
    """


class LibraryError(ReproError):
    """An unknown cell was requested from a standard-cell library."""


class ScanError(ReproError):
    """A design-for-test (scan) structure is inconsistent.

    Examples: a flop assigned to two chains, a shift applied with the
    wrong vector length, or a chain referencing a non-scan flop.
    """


class SimulationError(ReproError):
    """A simulation could not be carried out on the given design/stimulus."""


class AtpgError(ReproError):
    """Test generation failed in a way that is not a normal abort.

    Normal PODEM aborts (backtrack limit) are reported through return
    values, not exceptions; this exception marks malformed fault targets
    or inconsistent two-frame models.
    """


class PowerGridError(ReproError):
    """The power-grid model is malformed or the solve is ill-conditioned."""


class ConfigError(ReproError):
    """An invalid parameter value was supplied to a constructor or flow."""
