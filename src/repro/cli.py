"""The ``repro`` command-line interface.

One :func:`main` serves both entry points — the ``repro`` console
script and ``python -m repro`` (see :mod:`repro.__main__`).

Commands
--------
``casestudy``   run the whole paper reproduction and print the headline,
``table``       print one of the paper's tables (1, 2, 3, 4),
``atpg``        generate patterns and optionally write them as STIL,
``scap``        screen a STIL pattern file against SCAP thresholds,
``irmap``       print the dynamic IR-drop map of one pattern,
``floorplan``   print the synthetic SOC floorplan,
``flow``        run the staged noise-tolerant flow with checkpoint/resume,
``drc``         static design-rule check / testability lint (no simulation),
``sta``         static timing per clock domain (nominal, derated, or under
                the worst-case droop bound), gated by the TIM-* rules,
``schedule``    power/TAM-constrained SOC test schedule (greedy vs binpack),
``serve``       run the sharded ATPG job service over a store directory,
``submit``      enqueue one flow job (optionally ``--wait`` for it),
``jobs``        list a store's jobs and their shard progress,
``obs``         inspect telemetry artifacts (traces, reports).

Every command accepts ``--scale`` (tiny/small/bench/full), ``--seed``
and ``--log-level``.  ``flow`` adds the observability flags
(``--trace``, ``--chrome``, ``--metrics``, ``--metrics-json``,
``--profile``) that scope a :class:`repro.obs.Telemetry` over the run;
``repro obs summary|chrome|check trace.jsonl`` works with the traces
they write, and ``repro obs report run.json`` digests a saved
:class:`~repro.reporting.RunReport`.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import CaseStudy, RunContext
from .drc import FAIL_ON_CHOICES
from .obs import LOG_LEVELS, setup_logging
from .reporting import format_table


def package_version() -> str:
    """The installed distribution version (source-tree fallback)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from . import __version__

        return __version__


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "bench", "full"])
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--log-level", default="warning",
                        choices=list(LOG_LEVELS),
                        help="stdlib logging level for the repro tree "
                             "(default: warning)")
    parser.add_argument("--workers", default="1", metavar="N|auto",
                        help="worker processes for grading pools: a "
                             "count, or 'auto' to size from the work "
                             "and usable cores (default: 1)")


def _workers(args):
    raw = getattr(args, "workers", "1")
    return raw if raw == "auto" else int(raw)


def _study(args) -> CaseStudy:
    return CaseStudy(
        scale=args.scale, seed=args.seed,
        n_workers=_workers(args),
        checkpoint_dir=getattr(args, "checkpoint", None),
    )


def cmd_casestudy(args) -> int:
    study = _study(args)
    hc = study.headline_comparison()
    rows = [{"metric": k, "value": v} for k, v in hc.items()]
    print(format_table(rows, title="DAC'07 reproduction headline:"))
    return 0


def cmd_table(args) -> int:
    study = _study(args)
    if args.number == 1:
        print(format_table(
            [{"metric": k, "value": v} for k, v in study.table1().items()]
        ))
    elif args.number == 2:
        print(format_table(study.table2()))
    elif args.number == 3:
        for label, rows in study.table3().items():
            print(format_table(
                [
                    {
                        "block": r.block,
                        "avg_power_mW": r.avg_power_mw,
                        "worst_VDD_V": r.worst_drop_vdd_v,
                        "worst_VSS_V": r.worst_drop_vss_v,
                    }
                    for r in rows
                ],
                title=label,
            ))
    elif args.number == 4:
        print(format_table(
            [{"model": k, **v} for k, v in study.table4().items()]
        ))
    return 0


def cmd_atpg(args) -> int:
    from .atpg import AtpgEngine
    from .dft import write_stil

    study = _study(args)
    design = study.design
    engine = AtpgEngine(
        design.netlist, design.dominant_domain(), scan=design.scan,
        protocol=args.protocol, seed=1,
    )
    result = engine.run(fill=args.fill)
    print(
        f"{result.n_patterns} patterns, "
        f"test coverage {result.test_coverage:.1%}"
    )
    if args.output:
        with open(args.output, "w") as fh:
            write_stil(result.pattern_set, fh, scan=design.scan)
        print(f"wrote {args.output}")
    return 0


def cmd_scap(args) -> int:
    from .core import validate_pattern_set
    from .dft import read_stil

    study = _study(args)
    with open(args.patterns) as fh:
        patterns = read_stil(fh)
    report = validate_pattern_set(
        study.calculator, patterns, study.thresholds_mw
    )
    print(
        f"{len(report.violating_patterns())} of {report.n_patterns} "
        f"patterns exceed a block threshold"
    )
    for v in report.violations[:20]:
        print(
            f"  pattern {v.pattern_index}: {v.block} "
            f"{v.scap_mw:.2f} mW > {v.threshold_mw:.2f} mW"
        )
    return 1 if report.violations else 0


def cmd_irmap(args) -> int:
    from .pgrid import dynamic_ir_for_pattern, render_ir_map

    study = _study(args)
    flow = study.conventional()
    pattern = flow.pattern_set[args.pattern]
    _profile, timing = study.calculator.profile_pattern_with_timing(pattern)
    ir = dynamic_ir_for_pattern(study.model, timing)
    print(render_ir_map(
        study.model.vdd_grid, ir.drop_vdd,
        title=f"VDD IR-drop, pattern #{args.pattern}:",
    ))
    return 0


def cmd_floorplan(args) -> int:
    study = _study(args)
    print(study.figure1())
    return 0


def _load_run_report(path: str):
    """Load a RunReport JSON for the CLI, or ``None`` after a one-line
    error on stderr.

    A missing or corrupt report file is an operator mistake (wrong
    path, interrupted copy), not a bug — it gets a clean diagnostic
    and exit code 2, never a traceback.
    """
    import json

    from .reporting import RunReport

    try:
        return RunReport.load(path)
    except FileNotFoundError:
        print(f"error: no run report at {path!r}", file=sys.stderr)
    except (OSError, json.JSONDecodeError, ValueError, TypeError) as exc:
        print(
            f"error: unreadable run report {path!r}: {exc}",
            file=sys.stderr,
        )
    return None


def _flow_telemetry(args):
    """Build the run's telemetry from the flow's obs flags (or None)."""
    from .obs import Telemetry

    wants_trace = bool(args.trace or args.chrome)
    wants_metrics = bool(args.metrics or args.metrics_json)
    if not (wants_trace or wants_metrics or args.profile):
        return None
    return Telemetry(
        tracing=wants_trace,
        metrics=wants_metrics,
        profile=args.profile,
    )


def cmd_flow(args) -> int:
    from .core import run_noise_tolerant_flow
    from .reporting import RUN_FAILED
    from .soc import build_turbo_eagle

    if args.report:
        parent = os.path.dirname(os.path.abspath(args.report))
        if not os.path.isdir(parent):
            print(
                f"error: report directory does not exist: {parent!r}",
                file=sys.stderr,
            )
            return 2
    design = build_turbo_eagle(scale=args.scale, seed=args.seed)
    telemetry = _flow_telemetry(args)
    result, report = run_noise_tolerant_flow(
        design,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
        max_patterns=args.max_patterns,
        stop_after_stage=args.stop_after,
        report_path=args.report,
        context=RunContext(telemetry=telemetry),
        schedule_budget_mw=args.schedule_budget,
        schedule_strategy=args.schedule_strategy,
        timing_prescreen=args.timing_prescreen,
        timing_max_patterns=args.timing_max_patterns,
        seed=1,
    )
    if report.timing is not None:
        if "error" in report.timing:
            print(f"timing: {report.timing['error']}", file=sys.stderr)
        else:
            counts = report.timing["endpoint_counts"]
            print(
                f"timing pre-screen: {report.timing['n_patterns']} "
                f"patterns, {report.timing['endpoints_total']} endpoint "
                f"checks — {counts['inactive']} inactive, "
                f"{counts['safe_static'] + counts['safe_derated']} "
                f"provably safe, {counts['at_risk']} at risk "
                f"({report.timing['pruned_endpoint_fraction']:.1%} "
                f"pruned); soundness "
                f"{report.timing['soundness_violations']} violation(s) "
                f"in {report.timing['soundness_checked']} checks"
            )
    if report.schedule is not None:
        if "error" in report.schedule:
            print(f"schedule: {report.schedule['error']}", file=sys.stderr)
        else:
            print(
                f"schedule ({report.schedule['strategy']}): "
                f"{report.schedule['n_blocks']} blocks in "
                f"{report.schedule['makespan_us']:.2f} us, "
                f"peak {report.schedule['peak_power_mw']:.2f} mW / "
                f"budget {report.schedule['power_budget_mw']:.2f} mW"
            )
    for stage in report.stages:
        origin = " (from checkpoint)" if stage.from_checkpoint else ""
        print(f"  {stage.name}: {stage.status}{origin}")
    print(f"flow status: {report.status}")
    if report.error:
        print(f"error: {report.error}", file=sys.stderr)
    if result is not None:
        print(
            f"{result.n_patterns} patterns, "
            f"test coverage {result.test_coverage:.1%}"
        )
    if telemetry is not None:
        if args.trace and telemetry.save_trace_jsonl(args.trace):
            print(f"wrote trace to {args.trace}")
        if args.chrome and telemetry.save_chrome_trace(args.chrome):
            print(f"wrote Chrome trace to {args.chrome}")
        if args.metrics and telemetry.save_metrics_prometheus(args.metrics):
            print(f"wrote metrics to {args.metrics}")
        if args.metrics_json and telemetry.save_metrics_json(
            args.metrics_json
        ):
            print(f"wrote metrics JSON to {args.metrics_json}")
        if args.profile:
            table = telemetry.hotspot_table()
            if table:
                print(table)
    if args.report:
        print(f"wrote run report to {args.report}")
        # Round-trip through RunReport.load so what is printed is what
        # a later `repro obs report` sees, not in-memory state.
        loaded = _load_run_report(args.report)
        if loaded is None:
            return 2
        print(format_table(
            loaded.stage_times(),
            columns=["stage", "status", "elapsed_s", "patterns"],
            title="stage wall times:",
        ))
    # A deliberate --stop-after partial run exits 0; only a run that
    # actually failed (or produced nothing) signals an error.
    return 3 if report.status == RUN_FAILED or report.error else 0


def cmd_schedule(args) -> int:
    import json

    from .core.scheduling import (
        ScheduleBudget,
        budget_sweep,
        generate_block_specs,
        get_scheduler,
    )
    from .errors import ConfigError

    if args.synthetic:
        specs = generate_block_specs(args.synthetic, seed=args.seed)
        tam = args.tam_width
    else:
        from .core.scheduling import specs_from_design
        from .power.static_bound import StaticScapBound

        study = _study(args)
        design = study.design
        bound = StaticScapBound(design, study.domain)
        specs = specs_from_design(
            design,
            bound.test_power_bounds_mw(),
            {b: args.patterns for b in design.blocks()},
        )
        tam = (
            args.tam_width
            if args.tam_width is not None
            else design.tam_width
        )

    if args.power_budget is not None:
        budgets = [args.power_budget]
    else:
        budgets = budget_sweep(specs)
    strategies = (
        ["greedy", "binpack"] if args.strategy == "both"
        else [args.strategy]
    )

    rows = []
    try:
        for budget_mw in budgets:
            budget = ScheduleBudget(power_mw=budget_mw, tam_width=tam)
            for strategy in strategies:
                schedule = get_scheduler(strategy).schedule(specs, budget)
                schedule.validate()
                rows.append({
                    "budget_mw": round(budget_mw, 3),
                    "strategy": strategy,
                    "makespan_us": round(schedule.makespan_us, 3),
                    "peak_power_mw": round(schedule.peak_power_mw, 3),
                    "speedup": round(schedule.speedup, 3),
                })
    except ConfigError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 2
    print(format_table(
        rows, title=f"power-constrained test schedules "
                    f"({len(specs)} blocks, TAM width {tam}):",
    ))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump({"tam_width": tam, "rows": rows}, fh, indent=1)
            fh.write("\n")
        print(f"wrote {args.json_out}")
    return 0


def cmd_drc(args) -> int:
    from .drc import DrcContext, load_waivers, run_drc

    waivers = load_waivers(args.waivers) if args.waivers else None
    if args.netlist:
        from .netlist.verilog import parse_verilog

        with open(args.netlist) as fh:
            netlist = parse_verilog(fh)
        ctx = DrcContext.for_netlist(netlist)
    else:
        study = _study(args)
        thresholds = study.thresholds_mw if args.power else None
        grid = study.model if args.timing else None
        ctx = DrcContext.for_design(
            study.design, thresholds_mw=thresholds, grid=grid
        )
    report = run_drc(ctx, waivers=waivers)
    print(report.format_text())
    if args.json_out:
        report.save(args.json_out)
        print(f"wrote {args.json_out}")
    gating = report.gating_violations(args.fail_on)
    if gating:
        print(
            f"FAIL: {len(gating)} unwaived violation(s) at or above "
            f"severity {args.fail_on!r}",
            file=sys.stderr,
        )
        return 2
    return 0


def cmd_sta(args) -> int:
    import json

    import numpy as np

    from .config import ElectricalEnv
    from .drc import DrcContext, run_drc
    from .sim.delays import DelayModel
    from .sim.sta import StaticTimingAnalyzer

    if args.derate is not None and args.derate < 1.0:
        print(
            "error: --derate must be >= 1.0 (droop only slows cells)",
            file=sys.stderr,
        )
        return 2
    study = _study(args)
    design = study.design
    mode = (
        "droop-bound"
        if args.droop_bound
        else (
            f"derate {args.derate:g}"
            if args.derate is not None
            else "nominal"
        )
    )
    # The droop-bound mode needs the calibrated power grid; the other
    # modes stay simulation- and grid-free.
    model = study.model if args.droop_bound else None
    env = ElectricalEnv()
    delays = DelayModel(design.netlist, design.parasitics)
    launch_domains = {
        f.clock_domain for f in design.netlist.flops if f.edge == "pos"
    }
    rows = []
    domains_json = {}
    for name in sorted(design.domains):
        if name not in launch_domains:
            continue
        if args.droop_bound:
            from .timing import DroopBoundAnalyzer

            analyzer = DroopBoundAnalyzer(
                design, name, model=model, env=env, delays=delays
            )
            gate_droop, flop_droop, _total = analyzer.droop_bounds_v()
            report = analyzer.sta.analyze(
                gate_derate=1.0
                + env.k_volt * np.clip(gate_droop, 0.0, None),
                flop_derate=1.0
                + env.k_volt * np.clip(flop_droop, 0.0, None),
            )
        else:
            sta = StaticTimingAnalyzer(
                design.netlist,
                delays,
                design.clock_trees[name],
                design.domains[name].period_ns,
                name,
            )
            if args.derate is not None:
                report = sta.analyze(
                    gate_derate=np.full(
                        design.netlist.n_gates, args.derate
                    ),
                    flop_derate=np.full(
                        design.netlist.n_flops, args.derate
                    ),
                )
            else:
                report = sta.analyze()
        worst = report.worst_endpoints(1)
        rows.append({
            "domain": name,
            "period_ns": round(report.period_ns, 3),
            "endpoints": len(report.endpoints),
            "worst_slack_ns": round(report.worst_slack_ns, 3),
            "worst_endpoint": worst[0].flop_name if worst else "",
            "failing": len(report.failing_endpoints()),
        })
        domains_json[name] = {
            "period_ns": report.period_ns,
            "n_endpoints": len(report.endpoints),
            "worst_slack_ns": report.worst_slack_ns,
            "failing_endpoints": len(report.failing_endpoints()),
            "worst_endpoints": [
                {
                    "flop_name": ep.flop_name,
                    "arrival_ns": round(ep.arrival_ns, 6),
                    "required_ns": round(ep.required_ns, 6),
                    "slack_ns": round(ep.slack_ns, 6),
                }
                for ep in report.worst_endpoints(5)
            ],
        }
    print(format_table(
        rows,
        columns=["domain", "period_ns", "endpoints", "worst_slack_ns",
                 "worst_endpoint", "failing"],
        title=f"static timing per clock domain ({mode}):",
    ))

    ctx = DrcContext.for_design(
        design, grid=model, timing_guard_band_ns=args.guard_band
    )
    drc_report = run_drc(ctx, families=["timing"])
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(
                {
                    "mode": mode,
                    "guard_band_ns": args.guard_band,
                    "domains": domains_json,
                    "drc": drc_report.to_dict(),
                },
                fh,
                indent=1,
                sort_keys=True,
            )
            fh.write("\n")
        print(f"wrote {args.json_out}")
    gating = drc_report.gating_violations(args.fail_on)
    if gating:
        for v in gating[:10]:
            print(f"  {v.severity} {v.rule_id}: {v.message}",
                  file=sys.stderr)
        print(
            f"FAIL: {len(gating)} TIM violation(s) at or above "
            f"severity {args.fail_on!r}",
            file=sys.stderr,
        )
        return 2
    return 0


def cmd_export(args) -> int:
    from .reporting import export_case_study

    study = _study(args)
    written = export_case_study(study, args.out)
    print(f"wrote {len(written)} artefacts to {args.out}/")
    for path in written:
        print(f"  {path}")
    return 0


def cmd_obs(args) -> int:
    from .obs import (
        format_summary,
        load_trace_jsonl,
        nesting_errors,
        save_chrome_trace,
    )

    if args.action == "report":
        report = _load_run_report(args.input)
        if report is None:
            return 2
        print(format_table(
            report.stage_times(),
            columns=["stage", "status", "elapsed_s", "patterns"],
            title=f"{report.flow} ({report.status}):",
        ))
        tel = report.telemetry
        if tel is None:
            print("(no telemetry recorded)")
            return 0
        print(f"run id: {tel.get('run_id')}  "
              f"elapsed: {tel.get('elapsed_s')} s  "
              f"trace events: {tel.get('n_trace_events', 0)}")
        metrics = tel.get("metrics") or {}
        rows = []
        for name in sorted(metrics):
            series = metrics[name].get("series", {})
            total = sum(
                v for v in series.values() if isinstance(v, (int, float))
            )
            rows.append({
                "metric": name,
                "kind": metrics[name].get("kind"),
                "total": round(total, 6),
            })
        if rows:
            print(format_table(rows, title="metrics:"))
        return 0

    events = load_trace_jsonl(args.input)
    if args.action == "summary":
        print(format_summary(events))
        return 0
    if args.action == "chrome":
        out = args.output or (args.input + ".chrome.json")
        save_chrome_trace(events, out)
        print(f"wrote {out} ({len(events)} spans); open it at "
              f"chrome://tracing or https://ui.perfetto.dev")
        return 0
    # "check": well-nestedness validation
    problems = nesting_errors(events)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"FAIL: {len(problems)} nesting violation(s)",
              file=sys.stderr)
        return 2
    print(f"OK: {len(events)} spans, tree is well-nested")
    return 0


def _service_store(args):
    """Open (or create) the job store named by ``args.store``,
    applying any config overrides the command supplies."""
    from .service import JobStore, ServiceConfig

    overrides = {
        "max_queue_depth": getattr(args, "queue_depth", None),
        "lease_ttl_s": getattr(args, "lease_ttl", None),
        "max_shard_attempts": getattr(args, "max_attempts", None),
    }
    set_overrides = {k: v for k, v in overrides.items() if v is not None}
    config = ServiceConfig(**set_overrides) if set_overrides else None
    return JobStore(args.store, config=config)


def _serve_http(args) -> int:
    """``repro serve --http``: the asyncio wire API + tenant fleet."""
    import time

    from .service import HttpServerThread, TenantFleet, TenantManager
    from .service.jobstore import ServiceConfig

    host, _, port_text = args.http.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        print(f"bad --http address {args.http!r}: want HOST:PORT",
              file=sys.stderr)
        return 2
    overrides = {
        "max_queue_depth": getattr(args, "queue_depth", None),
        "lease_ttl_s": getattr(args, "lease_ttl", None),
        "max_shard_attempts": getattr(args, "max_attempts", None),
    }
    set_overrides = {k: v for k, v in overrides.items() if v is not None}
    config = ServiceConfig(**set_overrides) if set_overrides else None
    tenants = TenantManager(args.store, default_config=config)
    fleet = TenantFleet(
        tenants,
        n_workers=args.workers_count,
        inline_fallback=not args.no_inline,
    )
    with HttpServerThread(tenants, host=host, port=port,
                          fleet=fleet) as server:
        print(f"serving HTTP on {server.base_url} "
              f"(tenant stores under {tenants.tenants_dir}, "
              f"{args.workers_count} worker(s) per tenant)")
        try:
            if args.drain:
                deadline = (
                    time.monotonic() + args.timeout
                    if args.timeout is not None else None
                )
                while any(
                    not job.terminal
                    for _, store in tenants.open_stores()
                    for job in store.list_jobs()
                ):
                    if deadline is not None and time.monotonic() > deadline:
                        print("drain timed out", file=sys.stderr)
                        return 3
                    time.sleep(args.poll)
                print("queue drained")
            else:
                while True:
                    time.sleep(1.0)
        except KeyboardInterrupt:
            print("stopping")
    return 0


def cmd_serve(args) -> int:
    import time

    from .errors import ServiceError
    from .service import ServiceSupervisor

    if args.http:
        return _serve_http(args)
    store = _service_store(args)
    supervisor = ServiceSupervisor(
        store,
        n_workers=args.workers_count,
        inline_fallback=not args.no_inline,
    )
    mode = (
        f"{args.workers_count} worker(s)"
        if args.workers_count
        else "in-process (degraded) execution"
    )
    print(f"serving job store {store.root} with {mode}")
    with supervisor:
        try:
            if args.drain:
                supervisor.run_until_drained(timeout_s=args.timeout)
                print("queue drained")
            else:
                while True:
                    supervisor.tick()
                    time.sleep(args.poll)
        except KeyboardInterrupt:
            print("stopping workers")
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return 0


def cmd_submit(args) -> int:
    from .errors import ServiceBusyError, ServiceError
    from .service import JobSpec, ServiceClient

    client = ServiceClient(_service_store(args))
    spec = JobSpec(
        scale=args.scale,
        seed=args.seed,
        max_patterns=args.max_patterns,
        telemetry=args.obs,
    )
    try:
        job_id = client.submit(spec)
    except ServiceBusyError as exc:
        print(
            f"busy: {exc} — retry when the queue drains",
            file=sys.stderr,
        )
        return 2
    print(job_id)
    if not args.wait:
        return 0
    try:
        job = client.wait(job_id, timeout_s=args.timeout)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"job {job_id}: {job.state}")
    if job.state == "done":
        result = client.result(job_id)
        print(
            f"{result['n_patterns']} patterns, "
            f"test coverage {result['test_coverage']:.1%}"
        )
        return 0
    if job.error:
        print(f"error: {job.error}", file=sys.stderr)
    return 3


def cmd_jobs(args) -> int:
    import json

    from .errors import ServiceError
    from .service import JobStore, ServiceClient, validate_tenant_name

    if args.tenant:
        try:
            validate_tenant_name(args.tenant)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        root = os.path.join(args.store, "tenants", args.tenant)
        if not os.path.isdir(root):
            print(f"no such tenant {args.tenant!r} under "
                  f"{os.path.join(args.store, 'tenants')}",
                  file=sys.stderr)
            return 2
        client = ServiceClient(JobStore(root))
    else:
        client = ServiceClient(_service_store(args))
    if args.cancel:
        try:
            job = client.cancel(args.cancel)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"cancelled {job.id}")
        return 0
    jobs = client.jobs()
    if args.as_json:
        print(json.dumps(
            {
                "store": client.store.root,
                "jobs": [job.to_dict() for job in jobs],
            },
            indent=1, sort_keys=True,
        ))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    rows = []
    for job in jobs:
        done = sum(1 for s in job.shards if s.state == "done")
        attempts = sum(s.attempts for s in job.shards)
        rows.append({
            "job": job.id,
            "state": job.state,
            "shards": f"{done}/{len(job.shards)}",
            "attempts": attempts,
            "error": (job.error or "")[:48],
        })
    print(format_table(
        rows,
        columns=["job", "state", "shards", "attempts", "error"],
        title=f"jobs in {client.store.root}:",
    ))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Supply-noise-aware TDF ATPG (DAC'07 reproduction)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("casestudy", help="run the full reproduction")
    _add_common(p)
    p.add_argument("--checkpoint", help="persist/reuse results in DIR")
    p.set_defaults(fn=cmd_casestudy)

    p = sub.add_parser("table", help="print one paper table")
    _add_common(p)
    p.add_argument("number", type=int, choices=[1, 2, 3, 4])
    p.set_defaults(fn=cmd_table)

    p = sub.add_parser("atpg", help="generate transition patterns")
    _add_common(p)
    p.add_argument("--fill", default="random",
                   choices=["random", "0", "1", "adjacent", "preferred"])
    p.add_argument("--protocol", default="loc", choices=["loc", "los"])
    p.add_argument("--output", help="write patterns as STIL")
    p.set_defaults(fn=cmd_atpg)

    p = sub.add_parser("scap", help="screen a STIL file against thresholds")
    _add_common(p)
    p.add_argument("patterns", help="STIL file from `repro atpg`")
    p.set_defaults(fn=cmd_scap)

    p = sub.add_parser("irmap", help="IR-drop map of one pattern")
    _add_common(p)
    p.add_argument("--pattern", type=int, default=0)
    p.set_defaults(fn=cmd_irmap)

    p = sub.add_parser("floorplan", help="print the floorplan")
    _add_common(p)
    p.set_defaults(fn=cmd_floorplan)

    p = sub.add_parser("export", help="write every table/figure to files")
    _add_common(p)
    p.add_argument("--out", default="artifacts",
                   help="output directory (default: artifacts/)")
    p.add_argument("--checkpoint", help="persist/reuse results in DIR")
    p.set_defaults(fn=cmd_export)

    p = sub.add_parser(
        "drc", help="static design-rule check / testability lint"
    )
    _add_common(p)
    p.add_argument("--netlist", metavar="FILE",
                   help="check a structural Verilog file instead of a "
                        "generated design (scan rules use its "
                        "`// pragma ... chain=c:p` metadata)")
    p.add_argument("--json", dest="json_out", metavar="FILE",
                   help="write the full violation report as JSON")
    p.add_argument("--waivers", metavar="FILE",
                   help="JSON waiver file excusing reviewed findings")
    p.add_argument("--fail-on", default="error", choices=FAIL_ON_CHOICES,
                   help="lowest severity that makes the command exit "
                        "non-zero (default: error)")
    p.add_argument("--power", action="store_true",
                   help="derive SCAP thresholds and run the static "
                        "power pre-screen (calibrates the power grid; "
                        "generated designs only)")
    p.add_argument("--timing", action="store_true",
                   help="calibrate the power grid so the droop-bound "
                        "rule (TIM-DROOP) runs too (generated designs "
                        "only)")
    p.set_defaults(fn=cmd_drc)

    p = sub.add_parser(
        "sta",
        help="static timing per clock domain, gated by the TIM-* rules",
    )
    _add_common(p)
    mode = p.add_mutually_exclusive_group()
    mode.add_argument("--derate", type=float, metavar="K",
                      help="multiply every cell delay by K >= 1.0 "
                           "(uniform voltage-noise margin)")
    mode.add_argument("--droop-bound", action="store_true",
                      help="derate each cell by the worst-case static "
                           "droop bound (calibrates the power grid)")
    p.add_argument("--guard-band", type=float, metavar="NS",
                   help="TIM-MARGIN guard band in ns (default: 0.5)")
    p.add_argument("--json", dest="json_out", metavar="FILE",
                   help="write the per-domain report and the TIM DRC "
                        "findings as JSON")
    p.add_argument("--fail-on", default="error", choices=FAIL_ON_CHOICES,
                   help="lowest TIM severity that makes the command "
                        "exit non-zero (default: error)")
    p.set_defaults(fn=cmd_sta)

    p = sub.add_parser(
        "flow", help="staged noise-tolerant flow with checkpoint/resume"
    )
    _add_common(p)
    p.add_argument("--checkpoint", help="stage checkpoint directory")
    p.add_argument("--no-resume", dest="resume", action="store_false",
                   help="ignore existing checkpoints and start fresh")
    p.add_argument("--stop-after", type=int, metavar="N",
                   help="deliberately stop after stage index N")
    p.add_argument("--max-patterns", type=int,
                   help="total pattern budget across stages")
    p.add_argument("--report", help="write the RunReport JSON here and "
                                    "print per-stage wall times")
    p.add_argument("--trace", metavar="FILE",
                   help="write the span trace as JSONL")
    p.add_argument("--chrome", metavar="FILE",
                   help="write the trace as Chrome trace-event JSON")
    p.add_argument("--metrics", metavar="FILE",
                   help="write metrics in Prometheus text format")
    p.add_argument("--metrics-json", metavar="FILE",
                   help="write the metrics snapshot as JSON")
    p.add_argument("--profile", action="store_true",
                   help="cProfile each stage and print the hotspot table")
    p.add_argument("--schedule-budget", type=float, metavar="MW",
                   help="also build a power-constrained SOC test "
                        "schedule under this chip-wide envelope")
    p.add_argument("--schedule-strategy", default="binpack",
                   choices=["greedy", "binpack"],
                   help="scheduler for --schedule-budget "
                        "(default: binpack)")
    p.add_argument("--timing-prescreen", action="store_true",
                   help="classify every generated pattern's endpoints "
                        "against the droop-derated delay bound; only "
                        "at-risk ones pay the IR-scaled re-simulation")
    p.add_argument("--timing-max-patterns", type=int, metavar="N",
                   help="cap how many patterns the timing pre-screen "
                        "examines")
    p.set_defaults(fn=cmd_flow)

    p = sub.add_parser(
        "schedule",
        help="power/TAM-constrained SOC test schedule (greedy vs binpack)",
    )
    _add_common(p)
    p.add_argument("--strategy", default="both",
                   choices=["greedy", "binpack", "both"],
                   help="scheduler(s) to run (default: both, for "
                        "side-by-side comparison)")
    p.add_argument("--power-budget", type=float, metavar="MW",
                   help="chip-wide power envelope (default: sweep a "
                        "Pareto range derived from the block powers)")
    p.add_argument("--tam-width", type=int, metavar="W",
                   help="TAM width in lines (default: the design's)")
    p.add_argument("--patterns", type=int, default=64, metavar="N",
                   help="pattern count per block when scheduling the "
                        "generated design (default: 64)")
    p.add_argument("--synthetic", type=int, metavar="N",
                   help="schedule a generated N-block abstract SOC "
                        "instead of the Turbo-Eagle design")
    p.add_argument("--json", dest="json_out", metavar="FILE",
                   help="write the schedule rows as JSON")
    p.set_defaults(fn=cmd_schedule)

    p = sub.add_parser(
        "serve",
        help="run the ATPG job service over a store directory",
    )
    p.add_argument("store", help="job store root directory")
    p.add_argument("--http", metavar="HOST:PORT", default=None,
                   help="serve the HTTP/1.1 wire API on this address "
                        "(port 0 picks a free port); the store becomes "
                        "a multi-tenant data root with per-tenant "
                        "stores under <store>/tenants/")
    p.add_argument("--workers", dest="workers_count", type=int, default=2,
                   metavar="N",
                   help="worker processes to supervise; 0 runs jobs "
                        "in-process serially (default: 2)")
    p.add_argument("--drain", action="store_true",
                   help="exit once every job is terminal instead of "
                        "serving forever")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="give up draining after S seconds (with --drain)")
    p.add_argument("--poll", type=float, default=0.5, metavar="S",
                   help="supervision tick interval (default: 0.5)")
    p.add_argument("--no-inline", action="store_true",
                   help="never execute shards in the supervisor process "
                        "even when every worker is dead")
    p.add_argument("--queue-depth", type=int, metavar="N",
                   help="override the store's max queue depth")
    p.add_argument("--lease-ttl", type=float, metavar="S",
                   help="override the store's lease TTL in seconds")
    p.add_argument("--max-attempts", type=int, metavar="N",
                   help="override the per-shard attempt budget")
    p.add_argument("--log-level", default="warning",
                   choices=list(LOG_LEVELS))
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit one flow job to a job store"
    )
    p.add_argument("store", help="job store root directory")
    p.add_argument("--scale", default="tiny",
                   choices=["tiny", "small", "bench", "full"])
    p.add_argument("--seed", type=int, default=2007)
    p.add_argument("--max-patterns", type=int,
                   help="total pattern budget across stages")
    p.add_argument("--obs", action="store_true",
                   help="persist per-shard trace/metrics artifacts in "
                        "the job directory")
    p.add_argument("--wait", action="store_true",
                   help="block until the job is terminal (running its "
                        "shards in-process if no worker is alive)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="give up waiting after S seconds (with --wait)")
    p.add_argument("--log-level", default="warning",
                   choices=list(LOG_LEVELS))
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser(
        "jobs", help="list the jobs (and shard progress) in a store"
    )
    p.add_argument("store", help="job store root directory "
                                 "(or an HTTP data root with --tenant)")
    p.add_argument("--tenant", metavar="NAME", default=None,
                   help="inspect <store>/tenants/NAME — the layout "
                        "`repro serve --http` manages")
    p.add_argument("--json", dest="as_json", action="store_true",
                   help="emit the full job records as JSON instead of "
                        "the table")
    p.add_argument("--cancel", metavar="JOB_ID", default=None,
                   help="cancel a still-queued job instead of listing")
    p.add_argument("--log-level", default="warning",
                   choices=list(LOG_LEVELS))
    p.set_defaults(fn=cmd_jobs)

    p = sub.add_parser(
        "obs", help="inspect telemetry artifacts (traces, run reports)"
    )
    p.add_argument("--log-level", default="warning",
                   choices=list(LOG_LEVELS))
    p.add_argument("action",
                   choices=["summary", "chrome", "check", "report"],
                   help="summary: per-span table; chrome: convert to "
                        "trace-event JSON; check: validate span "
                        "nesting; report: digest a RunReport JSON")
    p.add_argument("input", help="trace JSONL (or RunReport JSON for "
                                 "`report`)")
    p.add_argument("-o", "--output",
                   help="output path for `chrome` (default: "
                        "INPUT.chrome.json)")
    p.set_defaults(fn=cmd_obs)

    args = parser.parse_args(argv)
    setup_logging(getattr(args, "log_level", "warning"))
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
