"""Thin setup.py kept for environments without the `wheel` package,
where `pip install -e .` (PEP 660) cannot build an editable wheel.
Falls back to: python setup.py develop
"""

from setuptools import setup

setup()
