"""ATPG flow timing: conventional vs staged generation from scratch.

Run at the tiny scale so the measured region is an entire ATPG flow
(PODEM + compaction + fault simulation + fill) without doubling the
session's shared-scale cost.
"""

from __future__ import annotations

from repro.core import ConventionalFlow, NoiseAwarePatternGenerator


def test_atpg_conventional_flow(benchmark, tiny_study):
    design = tiny_study.design

    def run():
        return ConventionalFlow(design, seed=1).run()

    flow = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"conventional: {flow.n_patterns} patterns, "
        f"coverage {flow.test_coverage:.1%}"
    )
    assert flow.test_coverage > 0.5


def test_atpg_staged_flow(benchmark, tiny_study):
    design = tiny_study.design

    def run():
        return NoiseAwarePatternGenerator(design, seed=1).run()

    flow = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"staged: {flow.n_patterns} patterns, "
        f"coverage {flow.test_coverage:.1%}, "
        f"boundaries {flow.step_boundaries}"
    )
    assert flow.test_coverage > 0.5
    assert len(flow.step_results) == 3
