"""Extension — observation test points vs coverage and noise.

SCOAP-guided observation points lift the coverage the LOC flow can
reach; because they only *watch* nets, the launch switching is
unchanged — coverage for free from the noise perspective.
"""

from __future__ import annotations

import numpy as np

from repro.atpg import AtpgEngine
from repro.core import validate_pattern_set
from repro.dft import insert_observation_points
from repro.reporting import format_table
from repro.soc import build_turbo_eagle


def test_ext_observation_points(benchmark, tiny_study):
    # Fresh design: insertion mutates the netlist.
    design = build_turbo_eagle("tiny", seed=2007)

    def run():
        out = {}
        base = AtpgEngine(design.netlist, "clka", scan=design.scan,
                          seed=1).run(fill="random")
        out["baseline"] = base
        insert_observation_points(design.netlist, design.scan, "clka",
                                  n_points=12)
        out["with_tpi"] = AtpgEngine(
            design.netlist, "clka", scan=design.scan, seed=1
        ).run(fill="random")
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "config": name,
            "patterns": res.n_patterns,
            "test_coverage": res.test_coverage,
            "aborted": len(res.aborted),
        }
        for name, res in results.items()
    ]
    print()
    print(format_table(rows, title="Observation test points:"))
    assert (
        results["with_tpi"].test_coverage
        > results["baseline"].test_coverage
    )
    assert len(results["with_tpi"].aborted) <= len(
        results["baseline"].aborted
    ) * 1.1