"""Ablation — launch mechanisms (paper Section 1.1 related work).

For identical shifted states, compare launch-off-capture (the paper's
protocol), launch-off-shift and enhanced scan: fortuitous detection and
launch-cycle switching activity.
"""

from __future__ import annotations

import numpy as np

from repro.atpg import FaultSimulator, build_fault_universe
from repro.reporting import format_table


def test_ablation_launch_protocols(benchmark, tiny_study):
    design = tiny_study.design
    netlist = design.netlist
    domain = design.dominant_domain()
    rng = np.random.default_rng(7)
    n_pat = 48
    v1 = rng.integers(0, 2, size=(n_pat, netlist.n_flops), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(n_pat, netlist.n_flops), dtype=np.uint8)
    faults = build_fault_universe(netlist)
    fsim = FaultSimulator(netlist, domain)
    calc = tiny_study.calculator

    def run_all():
        return {
            "loc": fsim.run(v1, faults),
            "los": fsim.run(v1, faults, protocol="los", scan=design.scan),
            "es": fsim.run(v1, faults, protocol="es", v2_matrix=v2),
        }

    detections = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for protocol in ("loc", "los", "es"):
        transitions = []
        for p in range(8):
            v1d = {fi: int(v1[p, fi]) for fi in range(netlist.n_flops)}
            v2d = {fi: int(v2[p, fi]) for fi in range(netlist.n_flops)}
            timing = calc.simulate_pattern(
                v1d, protocol=protocol,
                v2=v2d if protocol == "es" else None,
            )
            transitions.append(timing.n_transitions)
        rows.append(
            {
                "protocol": protocol,
                "faults_detected": len(detections[protocol]),
                "mean_launch_transitions": float(np.mean(transitions)),
            }
        )
    print()
    print(format_table(rows, title="Launch-protocol ablation "
                                   "(same 48 random shifted states):"))

    by_proto = {r["protocol"]: r for r in rows}
    # Arbitrary launch states (LOS/ES) detect more faults per random
    # pattern than the functionally-constrained LOC launch...
    assert by_proto["los"]["faults_detected"] >= by_proto["loc"][
        "faults_detected"
    ]
    # ...and create at least comparable switching (the power concern).
    assert by_proto["los"]["mean_launch_transitions"] > 0


def test_ablation_loc_vs_los_atpg(benchmark, tiny_study):
    """Full deterministic ATPG under both launch mechanisms.

    LOS reaches comparable (often higher) coverage with similar pattern
    counts because the launch state is a free variable — the classic
    trade against its over-testing and scan-enable timing costs.
    """
    from repro.atpg import AtpgEngine

    design = tiny_study.design

    def run_both():
        out = {}
        for protocol in ("loc", "los"):
            engine = AtpgEngine(
                design.netlist, design.dominant_domain(),
                scan=design.scan, protocol=protocol, seed=1,
            )
            out[protocol] = engine.run(fill="random")
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(format_table(
        [
            {
                "protocol": proto,
                "patterns": res.n_patterns,
                "coverage": res.test_coverage,
                "untestable": len(res.untestable),
                "aborted": len(res.aborted),
            }
            for proto, res in results.items()
        ],
        title="LOC vs LOS deterministic ATPG:",
    ))
    for res in results.values():
        assert res.inconsistent == []
        assert res.test_coverage > 0.5
