"""Extensions — violating-pattern repair and the full-chip flow.

Repair closes the loop with the paper's reference [18] (static vector
verification): violators whose noise came from the random filler are
re-filled with 0 at zero targeted-coverage cost; the rest need
regeneration.  The full-chip bench runs the paper's complete recipe:
staged fill-0 on clka, conventional ATPG on the five other domains.
"""

from __future__ import annotations

from repro.atpg import (
    FaultSimulator,
    build_fault_universe,
    collapse_faults,
)
from repro.core import repair_pattern_set, run_full_chip
from repro.reporting import format_table


def test_ext_pattern_repair(benchmark, tiny_study):
    study = tiny_study
    fsim = FaultSimulator(study.design.netlist, study.domain)
    reps, _ = collapse_faults(
        study.design.netlist, build_fault_universe(study.design.netlist)
    )
    patterns = study.conventional().pattern_set
    report = study.validation("conventional")

    def run():
        return repair_pattern_set(
            study.calculator, patterns, study.thresholds_mw,
            fsim=fsim, faults=reps, report=report,
        )

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"repair: {outcome.violations_before} violating patterns -> "
        f"{outcome.violations_after} "
        f"({len(outcome.repaired_patterns)} refilled, "
        f"{len(outcome.unrepairable_patterns)} need regeneration); "
        f"coverage {outcome.faults_before} -> {outcome.faults_after} faults"
    )
    assert outcome.violations_after < outcome.violations_before
    assert outcome.faults_after >= 0.8 * outcome.faults_before


def test_ext_full_chip_all_domains(benchmark, tiny_study):
    design = tiny_study.design

    def run():
        return run_full_chip(design, seed=1, backtrack_limit=40)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        [
            {
                "domain": o.domain,
                "flow": o.flow_name,
                "patterns": len(o.pattern_set),
                "detected": o.detected,
                "coverage": o.coverage,
            }
            for o in result.outcomes
        ],
        title="Full-chip run (paper recipe: staged clka + conventional rest):",
    ))
    print(
        f"total: {result.total_patterns} patterns, "
        f"{result.total_detected} faults detected"
    )
    assert result.outcomes[0].flow_name == "noise_aware_staged"
    assert result.total_detected >= result.outcomes[0].detected