"""Ablation — don't-care fill policies (paper Section 3.1).

The paper tried fill-0, fill-1 and fill-adjacent before settling on
fill-0 for launch-to-capture power.  This bench runs the same fault
list under all four fills and compares pattern count and B5 SCAP.
"""

from __future__ import annotations

import numpy as np

from repro.atpg import AtpgEngine
from repro.core import validate_pattern_set
from repro.reporting import format_table

FILLS = ("random", "0", "1", "adjacent")


def test_ablation_fill_policies(benchmark, tiny_study):
    design = tiny_study.design

    def run_all():
        out = {}
        for fill in FILLS:
            engine = AtpgEngine(
                design.netlist, design.dominant_domain(),
                scan=design.scan, seed=1,
            )
            out[fill] = engine.run(fill=fill)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for fill in FILLS:
        res = results[fill]
        report = validate_pattern_set(
            tiny_study.calculator, res.pattern_set, tiny_study.thresholds_mw
        )
        series = report.scap_series("B5")
        rows.append(
            {
                "fill": fill,
                "patterns": res.n_patterns,
                "coverage": res.test_coverage,
                "mean_SCAP_B5_mW": float(series.mean()),
                "violations_B5": len(report.violating_patterns("B5")),
            }
        )
    print()
    print(format_table(rows, title="Fill-policy ablation:"))

    by_fill = {r["fill"]: r for r in rows}
    # fill-0 produces quieter B5 activity than random fill...
    assert (
        by_fill["0"]["mean_SCAP_B5_mW"]
        < by_fill["random"]["mean_SCAP_B5_mW"]
    )
    # ...at a pattern-count cost (the paper's trade-off; within noise
    # at the smallest scales, so allow a small margin).
    assert by_fill["0"]["patterns"] >= 0.9 * by_fill["random"]["patterns"]
    # Coverage stays comparable across fills.
    covs = [r["coverage"] for r in rows]
    assert max(covs) - min(covs) < 0.12
