"""Table 2 — clock-domain analysis (flops per domain, frequency,
blocks covered; clka dominant)."""

from __future__ import annotations

from repro.reporting import format_table


def test_table2_clock_domains(benchmark, study):
    rows = benchmark.pedantic(study.table2, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Table 2: clock domain analysis"))
    by_name = {r["clock_domain"]: r for r in rows}
    total = sum(r["scan_cells"] for r in rows)
    assert by_name["clka"]["scan_cells"] / total > 0.6  # dominant domain
    assert by_name["clka"]["blocks_covered"] == "B1,B2,B3,B4,B5,B6"
