"""Figure 7 — endpoint path delays, nominal vs IR-drop-scaled cell
delays, for one below-threshold B5 pattern.

Shape checks (paper): some endpoints get slower (Region 1, up to ~30 %
in the paper), and path delays measured against each endpoint's own
(late) capture clock may *decrease* (Region 2).
"""

from __future__ import annotations

import numpy as np


def test_fig7_ir_scaled_endpoint_delays(benchmark, study):
    comp = benchmark.pedantic(study.figure7, rounds=1, iterations=1)
    deltas = comp.deltas()
    region1 = comp.region1()
    region2 = comp.region2()
    print()
    print(
        f"Figure 7: pattern #{comp.pattern_index}; "
        f"{len(deltas)} active endpoints, "
        f"{len(region1)} slowed (Region 1), "
        f"{len(region2)} apparently faster (Region 2)"
    )
    print(
        f"  worst droop {comp.ir.worst_vdd_v*1000:.0f} mV VDD + "
        f"{comp.ir.worst_vss_v*1000:.0f} mV VSS; "
        f"max endpoint slowdown {comp.max_increase_pct():.1f}% "
        f"(paper: up to ~30%)"
    )
    if region1:
        worst = max(region1, key=lambda fi: deltas[fi])
        name = study.design.netlist.flops[worst].name
        print(
            f"  worst endpoint {name}: "
            f"{comp.nominal_ns[worst]:.2f} -> {comp.scaled_ns[worst]:.2f} ns"
        )

    assert deltas, "no active endpoints"
    assert region1, "IR-drop slowed nothing"
    assert 0 < comp.max_increase_pct() < 100.0
