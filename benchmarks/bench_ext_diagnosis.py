"""Extension — volume diagnosis accuracy.

Injects random detected transition faults as 'defective chips', logs
their tester syndromes under the conventional pattern set, and measures
how often cause-effect diagnosis pinpoints the injected site.
"""

from __future__ import annotations

import numpy as np

from repro.atpg import (
    TransitionFaultDiagnoser,
    build_fault_universe,
    collapse_faults,
)
from repro.reporting import format_table


def test_ext_diagnosis_accuracy(benchmark, tiny_study):
    study = tiny_study
    design = study.design
    patterns = study.conventional().pattern_set
    diagnoser = TransitionFaultDiagnoser(design.netlist, study.domain)
    reps, _ = collapse_faults(
        design.netlist, build_fault_universe(design.netlist)
    )
    flow = study.conventional()
    detected = [
        f for r in flow.step_results for f in r.detected
    ]
    rng = np.random.default_rng(1)
    picks = [detected[int(i)]
             for i in rng.choice(len(detected), size=15, replace=False)]

    def run():
        stats = {"top1": 0, "exact_contains": 0, "mean_candidates": 0.0}
        counts = []
        for truth in picks:
            syndrome = diagnoser.observe(patterns, truth)
            result = diagnoser.diagnose(patterns, syndrome, reps)
            counts.append(len(result.candidates))
            if result.best() and result.best().fault == truth:
                stats["top1"] += 1
            if any(c.fault == truth for c in result.exact_matches()):
                stats["exact_contains"] += 1
        stats["mean_candidates"] = float(np.mean(counts))
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        [
            {
                "injected_chips": len(picks),
                "truth_in_exact_matches": stats["exact_contains"],
                "truth_ranked_first": stats["top1"],
                "mean_candidates_reported": stats["mean_candidates"],
            }
        ],
        title="Cause-effect diagnosis accuracy:",
    ))
    assert stats["exact_contains"] == len(picks)
    assert stats["top1"] >= len(picks) // 2