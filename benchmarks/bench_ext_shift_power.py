"""Extension — shift-power comparison across fill policies.

The paper notes fill-adjacent "is mostly useful to minimize power usage
during scan shifting".  This bench quantifies that on our scan model:
mean total scan-cell transitions while shifting each pattern in.
"""

from __future__ import annotations

from repro.atpg import AtpgEngine
from repro.dft import shift_activity_summary
from repro.reporting import format_table

FILLS = ("random", "0", "adjacent")


def test_ext_shift_power_by_fill(benchmark, tiny_study):
    design = tiny_study.design

    def run_all():
        out = {}
        for fill in FILLS:
            engine = AtpgEngine(
                design.netlist, design.dominant_domain(),
                scan=design.scan, seed=1,
            )
            res = engine.run(fill=fill, max_patterns=25)
            out[fill] = shift_activity_summary(
                res.pattern_set, design.scan
            )
        return out

    summaries = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {"fill": fill, **summaries[fill]} for fill in FILLS
    ]
    print()
    print(format_table(rows, title="Shift activity by fill policy:"))

    # Adjacent fill shifts quietest; random is the noisiest.
    assert (
        summaries["adjacent"]["mean_total"]
        < summaries["random"]["mean_total"]
    )
    assert (
        summaries["0"]["mean_total"]
        <= summaries["random"]["mean_total"] * 1.05
    )