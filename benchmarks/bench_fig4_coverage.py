"""Figure 4 — test-coverage curves: conventional vs staged flow.

Shape checks: both curves are monotone, converge to comparable final
coverage, and the staged flow needs more patterns (paper: +644 patterns,
~11 %, for the clka domain).
"""

from __future__ import annotations

from repro.reporting import curve_to_csv


def test_fig4_coverage_curves(benchmark, study):
    curves = benchmark.pedantic(study.figure4, rounds=1, iterations=1)
    conv = curves["conventional"]
    stag = curves["staged"]
    print()
    print("Figure 4: coverage curves (pattern, coverage)")
    for name, curve in curves.items():
        marks = [curve[int(i * (len(curve) - 1) / 8)] for i in range(9)]
        print(f"  {name:>12}: " + "  ".join(
            f"({x},{y:.2f})" for x, y in marks
        ))
    print(f"  conventional: {len(conv)} patterns -> {conv[-1][1]:.1%}")
    print(f"  staged      : {len(stag)} patterns -> {stag[-1][1]:.1%}")

    for curve in (conv, stag):
        ys = [y for _x, y in curve]
        assert all(b >= a for a, b in zip(ys, ys[1:]))
    assert len(stag) >= len(conv)  # staged pays a pattern-count cost
    assert abs(conv[-1][1] - stag[-1][1]) < 0.12  # similar final coverage
    # CSV export works (plotting hook).
    assert curve_to_csv(conv).startswith("pattern,coverage")
