"""Service overhead: submit→done latency vs the in-process flow.

The job service wraps every flow stage in durable bookkeeping — fsync'd
job records, lease grants and renewals, per-shard flow restarts that
re-load earlier stages from checkpoints.  That buys crash survival; the
question this bench answers is what it costs when nothing crashes.

Measured on one tiny job (three shards):

* ``inproc``   — plain ``run_noise_tolerant_flow``, the baseline;
* ``inline``   — submit + ``ServiceClient.wait`` draining the job in
  the client process (the graceful-degradation path);
* ``workers1/2/4`` — submit + a supervised worker fleet, end to end
  (process spawn, claim, per-shard flow, fenced commit);
* ``http``     — submit over the wire to a live :mod:`repro.service.http`
  server with an in-process tenant fleet: the full stack of request
  parsing, JSON marshalling, ``asyncio.to_thread`` hops and
  poll-with-backoff waiting, plus a request-throughput probe against
  ``GET /healthz``.

Gates: the inline service path must stay within
``MAX_INLINE_OVERHEAD`` of the in-process flow, and the HTTP path
within ``MAX_HTTP_OVERHEAD`` of the *inline* path — the wire adapter
may not dominate the durability machinery it fronts.  (Worker-fleet
latency includes Python interpreter spawns per worker and is reported,
not gated.)

Emits machine-readable ``BENCH_service.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import build_turbo_eagle, run_noise_tolerant_flow
from repro.service import (
    JobSpec,
    JobStore,
    ServiceClient,
    ServiceConfig,
    ServiceSupervisor,
)

_OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

#: Inline service time may be at most this multiple of in-process time.
#: The per-shard flow restarts re-build the design and re-load earlier
#: stages from checkpoints, so ~2x is expected on a seconds-long job;
#: 3x leaves headroom for CI noise while still catching a regression
#: that makes the bookkeeping dominate.
MAX_INLINE_OVERHEAD = 3.0

#: HTTP submit→done may be at most this multiple of the inline path.
#: The wire adds per-poll TCP connections and JSON/pickle marshalling
#: around the same execution engine; on a seconds-long job that should
#: be close to 1x, with 3.0x as the regression tripwire.
MAX_HTTP_OVERHEAD = 3.0


def _run_inproc() -> tuple[float, np.ndarray]:
    design = build_turbo_eagle(scale="tiny", seed=2007)
    t0 = time.perf_counter()
    result, _ = run_noise_tolerant_flow(design, seed=1)
    return time.perf_counter() - t0, result.pattern_set.as_matrix()


def _run_inline(tmp: Path) -> tuple[float, np.ndarray]:
    client = ServiceClient(str(tmp / "inline"))
    t0 = time.perf_counter()
    job_id = client.submit(JobSpec(scale="tiny"))
    client.wait(job_id, timeout_s=600)
    elapsed = time.perf_counter() - t0
    return elapsed, client.result(job_id)["matrix"]


def _run_fleet(tmp: Path, n_workers: int) -> tuple[float, np.ndarray]:
    store = JobStore(
        str(tmp / f"fleet{n_workers}"), ServiceConfig(lease_ttl_s=30.0)
    )
    client = ServiceClient(store)
    t0 = time.perf_counter()
    job_id = client.submit(JobSpec(scale="tiny"))
    with ServiceSupervisor(store, n_workers=n_workers) as sup:
        sup.run_until_drained(timeout_s=600)
    elapsed = time.perf_counter() - t0
    return elapsed, client.result(job_id)["matrix"]


def _throughput_fleet(tmp: Path, n_workers: int, n_jobs: int) -> float:
    """Wall time to drain *n_jobs* identical jobs with *n_workers*."""
    store = JobStore(
        str(tmp / f"tp{n_workers}"),
        ServiceConfig(lease_ttl_s=30.0, max_queue_depth=n_jobs + 1),
    )
    client = ServiceClient(store)
    for _ in range(n_jobs):
        client.submit(JobSpec(scale="tiny"))
    t0 = time.perf_counter()
    with ServiceSupervisor(store, n_workers=n_workers) as sup:
        sup.run_until_drained(timeout_s=900)
    return time.perf_counter() - t0


def _run_http(tmp: Path) -> tuple[float, float, np.ndarray]:
    """Submit→done over the wire; also probes request throughput.

    Returns ``(job_elapsed_s, healthz_rps, matrix)``.
    """
    from repro.service import (
        HttpServerThread,
        HttpServiceClient,
        TenantFleet,
        TenantManager,
    )

    tenants = TenantManager(str(tmp / "http"))
    fleet = TenantFleet(tenants, n_workers=0)
    with HttpServerThread(tenants, fleet=fleet) as srv:
        client = HttpServiceClient(srv.base_url, tenant="bench")
        t0 = time.perf_counter()
        job_id = client.submit(JobSpec(scale="tiny"))
        client.wait(job_id, timeout_s=600)
        elapsed = time.perf_counter() - t0
        matrix = client.result(job_id)["matrix"]
        # request throughput: healthz round trips, fresh connection
        # each (the client's per-request model), for one second
        n_requests = 0
        t1 = time.perf_counter()
        while time.perf_counter() - t1 < 1.0:
            client.healthz()
            n_requests += 1
        rps = n_requests / (time.perf_counter() - t1)
    return elapsed, rps, matrix


def test_service_overhead_bounded(tmp_path):
    inproc_s, reference = _run_inproc()
    inline_s, inline_matrix = _run_inline(tmp_path)
    assert np.array_equal(inline_matrix, reference)

    http_s, http_rps, http_matrix = _run_http(tmp_path)
    assert np.array_equal(http_matrix, reference)

    fleet: dict[int, float] = {}
    for n_workers in (1, 2, 4):
        fleet_s, fleet_matrix = _run_fleet(tmp_path, n_workers)
        assert np.array_equal(fleet_matrix, reference)
        fleet[n_workers] = fleet_s

    n_jobs = 4
    tp_serial_s = _throughput_fleet(tmp_path, 1, n_jobs)
    tp_parallel_s = _throughput_fleet(tmp_path, 4, n_jobs)

    inline_overhead = inline_s / max(1e-9, inproc_s)
    http_overhead = http_s / max(1e-9, inline_s)
    payload = {
        "design": "turbo_eagle_tiny",
        "shards_per_job": 3,
        "latency_s": {
            "inproc": round(inproc_s, 3),
            "inline": round(inline_s, 3),
            "http": round(http_s, 3),
            **{
                f"workers{n}": round(s, 3) for n, s in fleet.items()
            },
        },
        "inline_overhead_x": round(inline_overhead, 3),
        "max_inline_overhead_x": MAX_INLINE_OVERHEAD,
        "http_overhead_x": round(http_overhead, 3),
        "max_http_overhead_x": MAX_HTTP_OVERHEAD,
        "http_healthz_rps": round(http_rps, 1),
        "throughput": {
            "n_jobs": n_jobs,
            "drain_s_workers1": round(tp_serial_s, 3),
            "drain_s_workers4": round(tp_parallel_s, 3),
            "speedup_4v1": round(
                tp_serial_s / max(1e-9, tp_parallel_s), 3
            ),
        },
    }
    _OUT_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True)
                         + "\n")

    print()
    print(
        f"submit→done latency: inproc {inproc_s:.2f}s, inline "
        f"{inline_s:.2f}s ({inline_overhead:.2f}x), http {http_s:.2f}s "
        f"({http_overhead:.2f}x inline, {http_rps:.0f} healthz rps), "
        + ", ".join(f"{n}w {s:.2f}s" for n, s in sorted(fleet.items()))
    )
    print(
        f"throughput ({n_jobs} jobs): 1 worker {tp_serial_s:.2f}s, "
        f"4 workers {tp_parallel_s:.2f}s "
        f"({payload['throughput']['speedup_4v1']:.2f}x)"
    )
    assert inline_overhead <= MAX_INLINE_OVERHEAD, (
        f"service inline path is {inline_overhead:.2f}x the in-process "
        f"flow (limit {MAX_INLINE_OVERHEAD}x) — the durability "
        f"bookkeeping should not dominate a tiny job"
    )
    assert http_overhead <= MAX_HTTP_OVERHEAD, (
        f"HTTP path is {http_overhead:.2f}x the inline service path "
        f"(limit {MAX_HTTP_OVERHEAD}x) — the wire adapter should not "
        f"dominate the execution it fronts"
    )
