"""Table 3 — statistical (vectorless) IR-drop per block.

Case 1 averages over the full clock period, Case 2 over the half-cycle
switching window.  Shape checks: power roughly doubles per block, B5 is
the dominant power and worst-IR block, and B5's drop rises the most in
absolute terms when the window is halved.
"""

from __future__ import annotations

from repro.reporting import format_table


def test_table3_statistical_ir(benchmark, study):
    result = benchmark.pedantic(study.table3, rounds=1, iterations=1)
    print()
    for label, rows in result.items():
        print(format_table(
            [
                {
                    "block": r.block,
                    "window_ns": r.window_ns,
                    "avg_power_mW": r.avg_power_mw,
                    "worst_VDD_V": r.worst_drop_vdd_v,
                    "worst_VSS_V": r.worst_drop_vss_v,
                }
                for r in rows
            ],
            title=f"Table 3 ({label}):",
        ))

    case1 = {r.block: r for r in result["case1_full_cycle"]}
    case2 = {r.block: r for r in result["case2_half_cycle"]}
    blocks = [b for b in case1 if b != "Chip"]

    # Average switching power ~doubles when the window is halved.
    for block in blocks:
        ratio = case2[block].avg_power_mw / case1[block].avg_power_mw
        assert 1.5 < ratio < 2.5, (block, ratio)

    # B5 dominates power and worst IR-drop in both cases.
    for case in (case1, case2):
        assert max(blocks, key=lambda b: case[b].avg_power_mw) == "B5"
        assert max(blocks, key=lambda b: case[b].worst_drop_vdd_v) == "B5"

    # B5 sees the largest absolute drop increase (central block).
    increases = {
        b: case2[b].worst_drop_vdd_v - case1[b].worst_drop_vdd_v
        for b in blocks
    }
    assert max(increases, key=increases.get) == "B5"
