"""Extension — overkill (good-chip false failures) census.

The paper's motivating scenario, measured: at a faster-than-at-speed
test period, conventional random-fill patterns fail endpoints they meet
nominally — purely because of their own supply noise — while the staged
noise-aware patterns keep their headroom.
"""

from __future__ import annotations

from repro.core import overkill_analysis
from repro.reporting import format_table


def test_ext_overkill_census(benchmark, tiny_study):
    study = tiny_study
    conv_set = study.conventional().pattern_set
    stag_set = study.staged().pattern_set

    # Choose an FTAS-class period: just above the sampled conventional
    # patterns' worst nominal endpoint delay.
    probe = overkill_analysis(
        study.calculator, study.model, conv_set, sample=10
    )
    period = max(p.worst_nominal_ns for p in probe.patterns) + \
        probe.setup_ns + 0.05

    def run():
        return {
            "conventional": overkill_analysis(
                study.calculator, study.model, conv_set,
                sample=10, period_ns=period,
            ),
            "staged": overkill_analysis(
                study.calculator, study.model, stag_set,
                sample=10, period_ns=period,
            ),
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        [
            {
                "flow": name,
                "patterns_at_risk": rep.n_at_risk,
                "sampled": len(rep.patterns),
                "overkill_endpoints": rep.total_overkill_endpoints(),
            }
            for name, rep in reports.items()
        ],
        title=f"Overkill census at {period:.2f} ns test period:",
    ))
    conv = reports["conventional"]
    stag = reports["staged"]
    # Nobody fails nominally (the test period was chosen that way for
    # the conventional sample)...
    assert all(not p.nominal_failures for p in conv.patterns)
    # ...but the noisy patterns kill good chips and the quiet ones
    # do so no more.
    assert conv.total_overkill_endpoints() > 0
    assert (
        stag.total_overkill_endpoints()
        <= conv.total_overkill_endpoints()
    )