"""Extensions — reverse-order pattern compaction and power-aware SOC
test scheduling (the paper's refs [5][6] motivation)."""

from __future__ import annotations

from repro.atpg import (
    FaultSimulator,
    build_fault_universe,
    collapse_faults,
    coverage_of_set,
    reverse_order_compaction,
)
from repro.core import schedule_block_tests, tasks_from_flow
from repro.reporting import format_table


def test_ext_reverse_order_compaction(benchmark, tiny_study):
    design = tiny_study.design
    patterns = tiny_study.conventional().pattern_set
    fsim = FaultSimulator(design.netlist, design.dominant_domain())
    reps, _ = collapse_faults(
        design.netlist, build_fault_universe(design.netlist)
    )

    def run():
        return reverse_order_compaction(fsim, patterns, reps)

    compacted, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    before = coverage_of_set(fsim, patterns, reps)
    after = coverage_of_set(fsim, compacted, reps)
    print()
    print(
        f"compaction: {len(patterns)} -> {len(compacted)} patterns "
        f"({stats['dropped']} dropped), coverage {before} -> {after} faults"
    )
    assert after == before
    assert len(compacted) <= len(patterns)


def test_ext_power_aware_scheduling(benchmark, tiny_study):
    flow = tiny_study.staged()
    thresholds = tiny_study.thresholds_mw
    tasks = tasks_from_flow(tiny_study.design, flow, thresholds)
    budget = sum(thresholds.values()) * 0.6  # chip functional budget

    def run():
        return schedule_block_tests(tasks, power_budget_mw=budget)

    schedule = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    rows = [
        {
            "session": i,
            "blocks": ",".join(t.block for t in s.tasks),
            "power_mW": s.power_mw,
            "time_us": s.time_us,
        }
        for i, s in enumerate(schedule.sessions)
    ]
    print(format_table(rows, title=f"Schedule (budget {budget:.2f} mW):"))
    print(
        f"makespan {schedule.makespan_us:.1f} us vs serial "
        f"{schedule.serial_time_us:.1f} us "
        f"(speedup {schedule.speedup:.2f}x, peak "
        f"{schedule.peak_power_mw:.2f} mW)"
    )
    assert schedule.peak_power_mw <= budget
    assert schedule.speedup >= 1.0