"""Extension — Monte-Carlo yield loss from test-induced supply noise.

Puts a production number on the paper's warning: across a chip
population with process speed spread, how many *good* chips do the
noisy conventional patterns reject at a faster-than-at-speed period,
versus the staged noise-aware set?
"""

from __future__ import annotations

from repro.core import binning_simulation, overkill_analysis
from repro.reporting import format_table


def test_ext_yield_binning(benchmark, tiny_study):
    study = tiny_study
    probe = overkill_analysis(
        study.calculator, study.model,
        study.conventional().pattern_set, sample=10,
    )
    period = max(p.worst_nominal_ns for p in probe.patterns) + \
        probe.setup_ns + 0.05

    reports = {
        "conventional": overkill_analysis(
            study.calculator, study.model,
            study.conventional().pattern_set, sample=10,
            period_ns=period,
        ),
        "staged": overkill_analysis(
            study.calculator, study.model,
            study.staged().pattern_set, sample=10,
            period_ns=period,
        ),
    }

    from repro.core import guardband_for_yield

    def run():
        out = {}
        for name, rep in reports.items():
            out[name] = {
                "at_fast_period": binning_simulation(
                    rep, n_chips=20_000, sigma=0.05
                ),
                "safe_period_ns": guardband_for_yield(rep),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    rows = []
    for name, data in results.items():
        r = data["at_fast_period"]
        nominal_capability = max(
            p.worst_nominal_ns for p in reports[name].patterns
        )
        rows.append(
            {
                "flow": name,
                "yield_loss@fast": r.yield_loss_fraction,
                "safe_period_ns": data["safe_period_ns"],
                "noise_guardband_ns": data["safe_period_ns"]
                - nominal_capability,
            }
        )
    print(format_table(
        rows,
        title=f"20k-chip binning (sigma 5%, fast period {period:.2f} ns):",
    ))
    conv = results["conventional"]["at_fast_period"]
    stag = results["staged"]["at_fast_period"]
    assert conv.yield_loss_fraction > 0.0
    assert stag.yield_loss_fraction <= conv.yield_loss_fraction + 0.05
    # Both flows find a clean test period within the sweep.
    for data in results.values():
        assert data["safe_period_ns"] < 25.0