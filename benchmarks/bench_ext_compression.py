"""Extension — test compression vs supply noise.

EDT-style compression stores per-pattern LFSR seeds; the on-chip
expansion of the don't-care space is pseudo-random.  That is exactly the
random fill the paper spends its Section 3 eliminating: this bench
measures both sides of the trade — tester-data compression ratio, and
the B5 SCAP of the *same cubes* under EDT expansion vs fill-0.
"""

from __future__ import annotations

import numpy as np

from repro.atpg import AtpgEngine
from repro.atpg.fill import care_mask
from repro.atpg.patterns import Pattern, PatternSet
from repro.core import validate_pattern_set
from repro.dft import EdtCompressor
from repro.reporting import format_table


def test_ext_compression_vs_noise(benchmark, tiny_study):
    study = tiny_study
    design = study.design
    engine = AtpgEngine(design.netlist, design.dominant_domain(),
                        scan=design.scan, seed=9)
    base = engine.run(fill="0")

    def run():
        compressor = EdtCompressor(design.scan, n_seed_bits=24)
        result = compressor.compress_pattern_set(base.pattern_set)
        expanded = PatternSet(base.pattern_set.domain, fill="edt")
        for pattern, seed in zip(base.pattern_set, result.seeds):
            if seed is None:
                expanded.append(pattern)  # fallback ships as-is
                continue
            expanded.append(
                Pattern(
                    index=pattern.index,
                    v1=compressor.expand(seed),
                    care=pattern.care,
                    domain=pattern.domain,
                    fill="edt",
                    targeted_faults=list(pattern.targeted_faults),
                )
            )
        return result, expanded

    result, expanded = benchmark.pedantic(run, rounds=1, iterations=1)

    fill0_rep = validate_pattern_set(
        study.calculator, base.pattern_set, study.thresholds_mw
    )
    edt_rep = validate_pattern_set(
        study.calculator, expanded, study.thresholds_mw
    )
    rows = [
        {
            "patterns": "fill-0 (uncompressed)",
            "mean_SCAP_B5_mW": float(fill0_rep.scap_series("B5").mean()),
            "violations_B5": len(fill0_rep.violating_patterns("B5")),
        },
        {
            "patterns": "EDT-expanded seeds",
            "mean_SCAP_B5_mW": float(edt_rep.scap_series("B5").mean()),
            "violations_B5": len(edt_rep.violating_patterns("B5")),
        },
    ]
    print()
    print(format_table(rows, title="Compression vs supply noise:"))
    print(
        f"compression: {result.n_compressed}/{len(result.seeds)} cubes "
        f"seeded ({result.n_seed_bits} bits), tester-data ratio "
        f"{result.compression_ratio:.2f}x, fallback "
        f"{result.fallback_fraction:.1%}"
    )

    assert result.n_compressed > 0
    assert result.compression_ratio > 1.0
    # The pseudo-random expansion re-creates the noise fill-0 removed.
    assert (
        rows[1]["mean_SCAP_B5_mW"] > rows[0]["mean_SCAP_B5_mW"]
    )