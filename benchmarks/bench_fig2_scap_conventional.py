"""Figure 2 — per-pattern SCAP in block B5, conventional random fill.

The measured region is the full SCAP screening (gate-level timing
simulation of every pattern — the paper's PLI loop).  Shape check: a
substantial fraction of conventional patterns exceeds the block's
statistical threshold (paper: 2253/5846 ≈ 39 %).
"""

from __future__ import annotations

import numpy as np

from repro.core import validate_pattern_set


def test_fig2_conventional_scap(benchmark, study):
    flow = study.conventional()

    def screen():
        return validate_pattern_set(
            study.calculator, flow.pattern_set, study.thresholds_mw
        )

    report = benchmark.pedantic(screen, rounds=1, iterations=1)
    series = report.scap_series("B5")
    threshold = study.thresholds_mw["B5"]
    violators = report.violating_patterns("B5")
    print()
    print(
        f"Figure 2: conventional flow, {len(series)} patterns, "
        f"B5 threshold {threshold:.2f} mW"
    )
    print(
        f"  SCAP(B5) min/median/max: {series.min():.2f} / "
        f"{np.median(series):.2f} / {series.max():.2f} mW"
    )
    print(
        f"  {len(violators)} patterns above threshold "
        f"({len(violators)/len(series):.1%}; paper: 38.5%)"
    )
    # Random-fill patterns must overshoot the threshold.  The violating
    # *fraction* is design-character-dependent (see EXPERIMENTS.md): it
    # shrinks with design scale because PODEM's hold-path justification
    # biases the load-enable bits low; the paper's industrial design
    # sat at 38.5 %.  The invariant is that violators exist and the
    # distribution's tail clearly exceeds the limit.
    assert len(violators) >= 1
    assert series.max() > 1.2 * threshold
