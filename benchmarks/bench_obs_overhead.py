"""Overhead of the telemetry instrumentation when telemetry is off.

Every hot loop now calls the ambient telemetry facade
(``tel.span(...)``, ``tel.count(...)``); with the default
:class:`~repro.obs.NullTelemetry` those calls must be noise.  Gating on
a wall-clock ratio of two full flow runs is hopelessly jittery on
shared CI runners, so the <5% budget is enforced with a call-counting
model instead:

1. run the flow under a counting facade to learn **N**, the number of
   instrumentation calls the run actually makes (and assert the result
   is bit-identical to the uninstrumented run);
2. microbenchmark **c**, the cost of one null facade call, over enough
   iterations that the number is stable;
3. charge the disabled-telemetry path ``N * c`` against the measured
   baseline runtime **T**: ``overhead_pct = 100 * N * c / T``.

The model deliberately over-charges (it prices every call at the
slowest facade method and ignores that the calls are already inside
``T``), so a pass here is conservative.  Emits machine-readable
``BENCH_obs.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core import run_noise_tolerant_flow
from repro.obs import NullTelemetry
from repro.soc import build_turbo_eagle

OVERHEAD_BUDGET_PCT = 5.0
_OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"


class CountingTelemetry(NullTelemetry):
    """Null facade that counts every instrumentation touch-point."""

    def __init__(self) -> None:
        self.calls = 0

    def span(self, name, **attrs):
        self.calls += 1
        return super().span(name)

    def profile_stage(self, stage):
        self.calls += 1
        return super().profile_stage(stage)

    def count(self, name, amount=1.0, **labels):
        self.calls += 1

    def gauge_set(self, name, value, **labels):
        self.calls += 1

    def observe(self, name, value, **labels):
        self.calls += 1

    def absorb_worker_events(self, events):
        self.calls += 1


def _null_call_cost_s(iterations: int = 200_000) -> float:
    """Per-call cost of the slowest null facade operation."""
    null = NullTelemetry()
    worst = 0.0
    for op in (
        lambda: null.count("bench.counter", 1.0, label="x"),
        lambda: null.span("bench.span", a=1, b=2).__enter__(),
    ):
        t0 = time.perf_counter()
        for _ in range(iterations):
            op()
        worst = max(worst, (time.perf_counter() - t0) / iterations)
    return worst


def test_disabled_telemetry_overhead_under_budget():
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    design = build_turbo_eagle(scale, seed=2007)

    # Warm-up run (imports, cone caches), then the measured baseline.
    run_noise_tolerant_flow(design, seed=1)
    t0 = time.perf_counter()
    baseline, _ = run_noise_tolerant_flow(design, seed=1)
    baseline_s = time.perf_counter() - t0
    assert baseline is not None

    counter = CountingTelemetry()
    counted, _ = run_noise_tolerant_flow(design, seed=1, telemetry=counter)

    # Telemetry only observes: the flow's output must not change.
    assert counted is not None
    assert (
        counted.pattern_set.as_matrix().tolist()
        == baseline.pattern_set.as_matrix().tolist()
    )

    call_cost_s = _null_call_cost_s()
    charged_s = counter.calls * call_cost_s
    overhead_pct = 100.0 * charged_s / baseline_s

    payload = {
        "scale": scale,
        "baseline_flow_s": round(baseline_s, 6),
        "instrumentation_calls": counter.calls,
        "null_call_ns": round(call_cost_s * 1e9, 2),
        "charged_s": round(charged_s, 6),
        "overhead_pct": round(overhead_pct, 4),
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "bit_identical": True,
    }
    _OUT_PATH.write_text(json.dumps(payload, indent=1) + "\n")

    print()
    print(
        f"disabled-telemetry overhead: {counter.calls} facade calls x "
        f"{call_cost_s * 1e9:.0f} ns = {charged_s * 1000:.2f} ms charged "
        f"against a {baseline_s * 1000:.0f} ms flow "
        f"({overhead_pct:.3f}% <= {OVERHEAD_BUDGET_PCT}%)"
    )
    assert overhead_pct < OVERHEAD_BUDGET_PCT, (
        f"null-telemetry instrumentation overhead {overhead_pct:.2f}% "
        f"exceeds the {OVERHEAD_BUDGET_PCT}% budget"
    )
