"""Extension — faster-than-at-speed binning with IR awareness (the
authors' companion ICCAD'06 work, their reference [20]).

Most transition patterns exercise paths far shorter than the functional
cycle, so they can be applied faster than at-speed to catch small delay
defects; per-pattern IR-drop eats into that headroom.
"""

from __future__ import annotations

from repro.core import ftas_analysis
from repro.reporting import format_table


def test_ext_ftas_binning(benchmark, study):
    patterns = study.conventional().pattern_set

    def run():
        return ftas_analysis(
            study.calculator, study.model, patterns, sample=12
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    nominal_freq = 1000.0 / report.nominal_period_ns
    freqs = [nominal_freq * m for m in (1.0, 1.25, 1.5, 2.0)]
    rows = []
    for label, ir_aware in (("nominal", False), ("ir_aware", True)):
        bins = report.bin_patterns(freqs, ir_aware=ir_aware)
        rows.append(
            {
                "delays": label,
                **{f"{f:.0f}MHz": bins[f] for f in sorted(bins)},
            }
        )
    print()
    print(format_table(rows, title="FTAS frequency bins (pattern counts):"))
    print(
        f"mean IR headroom loss: {report.mean_headroom_loss_pct():.1f}% "
        f"of the safe period"
    )

    assert report.patterns
    assert report.mean_headroom_loss_pct() >= 0.0
    # Many patterns are overclockable at nominal delays.
    top = report.bin_patterns(freqs, ir_aware=False)
    overclockable = sum(
        count for f, count in top.items() if f > nominal_freq
    )
    assert overclockable >= len(report.patterns) // 2