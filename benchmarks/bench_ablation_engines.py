"""Ablation — event-driven vs levelised (fast) timing engines.

The event engine is the reference (glitch-accurate); the fast engine
assumes one transition per net.  Measures the speedup and the energy
under-count on real patterns.
"""

from __future__ import annotations

import time

import numpy as np

from repro import ScapCalculator


def test_ablation_timing_engines(benchmark, study):
    patterns = list(study.conventional().pattern_set)[:16]
    event_calc = study.calculator
    fast_calc = ScapCalculator(study.design, study.domain, engine="fast")

    def run_fast():
        return [fast_calc.profile_pattern(p) for p in patterns]

    fast_profiles = benchmark.pedantic(run_fast, rounds=1, iterations=1)

    t0 = time.perf_counter()
    event_profiles = [event_calc.profile_pattern(p) for p in patterns]
    event_s = time.perf_counter() - t0

    ratios = [
        f.energy_fj_total / max(e.energy_fj_total, 1e-9)
        for e, f in zip(event_profiles, fast_profiles)
    ]
    print()
    print(
        f"engines on {len(patterns)} patterns: event {event_s*1000:.0f} ms "
        f"total; fast captures {np.mean(ratios):.1%} of event energy "
        f"(hazard power is the gap)"
    )
    for e, f in zip(event_profiles, fast_profiles):
        assert f.energy_fj_total <= e.energy_fj_total * 1.0001
        assert f.n_transitions <= e.n_transitions
    assert np.mean(ratios) > 0.4  # fast engine is a usable screen
