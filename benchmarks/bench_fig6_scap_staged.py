"""Figure 6 — per-pattern SCAP in B5 for the staged fill-0 flow.

Shape checks (paper): a long quiet prefix while B5 is untargeted, a
burst of activity once the greedy ATPG turns to B5, and a far smaller
violating fraction than the conventional flow (paper: 57/6490 ≈ 0.9 %
vs 2253/5846 ≈ 38.5 %).
"""

from __future__ import annotations

import numpy as np

from repro.core import validate_pattern_set


def test_fig6_staged_scap(benchmark, study):
    flow = study.staged()

    def screen():
        return validate_pattern_set(
            study.calculator, flow.pattern_set, study.thresholds_mw
        )

    report = benchmark.pedantic(screen, rounds=1, iterations=1)
    series = report.scap_series("B5")
    threshold = study.thresholds_mw["B5"]
    b5_start = flow.step_boundaries[-1]
    prefix = series[:b5_start]
    tail = series[b5_start:]
    violators = report.violating_patterns("B5")

    conv_report = study.validation("conventional")
    conv_fraction = conv_report.violation_fraction("B5")
    staged_fraction = len(violators) / max(1, len(series))

    print()
    print(
        f"Figure 6: staged flow, {len(series)} patterns "
        f"(B5 targeted from #{b5_start}), threshold {threshold:.2f} mW"
    )
    print(
        f"  prefix SCAP(B5) max {prefix.max() if prefix.size else 0:.3f} mW; "
        f"tail median {np.median(tail):.2f} mW"
    )
    print(
        f"  violations: staged {staged_fraction:.1%} vs conventional "
        f"{conv_fraction:.1%} (paper: 0.9% vs 38.5%)"
    )

    # Quiet prefix: nothing above threshold before B5 is targeted.
    assert prefix.size == 0 or (prefix <= threshold).all()
    # The staged flow violates less than the conventional flow.
    assert staged_fraction < conv_fraction
    # The burst exists: B5 activity jumps once B5 is targeted.
    if prefix.size and tail.size:
        assert np.median(tail) > (np.median(prefix) + 1e-9)
