"""Extension — sensitivity of the conclusions to the two calibrated
physical parameters: the delay-voltage slope ``k_volt`` and the grid's
functional-drop calibration target.

The paper's qualitative claims should not hinge on the exact values
(their k_volt = 0.9 came from one vendor library); this sweep verifies
the Figure-7 slowdown scales with k_volt and that the staged-quieter-
than-conventional ordering survives a 2x change in grid stiffness.
"""

from __future__ import annotations

from repro.config import ElectricalEnv
from repro.core import validate_pattern_set
from repro.core.irscale import ir_scaled_endpoint_comparison
from repro.pgrid import GridModel
from repro.reporting import format_table


def test_ext_kvolt_sensitivity(benchmark, tiny_study):
    study = tiny_study
    pattern = study.staged().pattern_set[
        study.staged().step_boundaries[-1]
    ]

    def sweep():
        out = {}
        for k in (0.45, 0.9, 1.8):
            comp = ir_scaled_endpoint_comparison(
                study.calculator, study.model, pattern,
                env=ElectricalEnv(k_volt=k),
            )
            out[k] = comp.max_increase_pct()
        return out

    slowdowns = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        [
            {"k_volt": k, "max_endpoint_slowdown_pct": v}
            for k, v in slowdowns.items()
        ],
        title="k_volt sensitivity (paper uses 0.9):",
    ))
    # Monotone in k_volt, and roughly proportional.
    ks = sorted(slowdowns)
    assert slowdowns[ks[0]] < slowdowns[ks[1]] < slowdowns[ks[2]]
    assert slowdowns[ks[2]] > 1.5 * slowdowns[ks[0]]


def test_ext_grid_stiffness_sensitivity(benchmark, tiny_study):
    study = tiny_study
    conv = study.conventional().pattern_set
    stag = study.staged().pattern_set

    def sweep():
        rows = []
        for target in (0.08, 0.15, 0.25):
            model = GridModel.calibrated(
                study.design, target_worst_drop_v=target, nx=12, ny=12
            )
            from repro.core import derive_scap_thresholds

            thresholds = derive_scap_thresholds(model)
            conv_rep = validate_pattern_set(
                study.calculator, conv, thresholds
            )
            stag_rep = validate_pattern_set(
                study.calculator, stag, thresholds
            )
            rows.append(
                {
                    "calibration_V": target,
                    "conv_viol_B5": len(conv_rep.violating_patterns("B5")),
                    "staged_viol_B5": len(stag_rep.violating_patterns("B5")),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Grid-stiffness sensitivity:"))
    # The SCAP thresholds derive from toggle statistics, not the grid
    # solve, so the screening ordering must hold at every stiffness.
    for row in rows:
        assert row["staged_viol_B5"] <= row["conv_viol_B5"]