"""Table 4 — CAP vs SCAP power and worst IR-drop for one pattern.

Shape checks (paper: SCAP > 2x CAP because the STW is about half the
cycle; worst average IR-drop roughly doubles under the SCAP window).
"""

from __future__ import annotations

from repro.reporting import format_table


def test_table4_cap_vs_scap(benchmark, study):
    table = benchmark.pedantic(study.table4, rounds=1, iterations=1)
    print()
    print(format_table(
        [{"model": name, **vals} for name, vals in table.items()],
        title="Table 4: CAP vs SCAP for one conventional pattern",
    ))
    cap, scap = table["CAP"], table["SCAP"]
    power_ratio = scap["avg_power_mw"] / cap["avg_power_mw"]
    drop_ratio = scap["worst_drop_vdd_v"] / max(cap["worst_drop_vdd_v"], 1e-9)
    print(f"SCAP/CAP power ratio: {power_ratio:.2f}x "
          f"(paper ~2.4x); worst-drop ratio {drop_ratio:.2f}x")
    assert power_ratio > 1.5
    assert scap["worst_drop_vdd_v"] >= cap["worst_drop_vdd_v"]
    assert scap["window_ns"] < cap["window_ns"]
    # VSS bounce slightly exceeds VDD drop (as in the paper's table).
    assert scap["worst_drop_vss_v"] > scap["worst_drop_vdd_v"]
