"""Figure 3 — dynamic IR-drop maps for patterns P1 (worst SCAP) and P2
(near-threshold).

Shape checks: P1's worst average drop exceeds P2's, and P1's "red"
region (> 10 % VDD) is at least as large (paper: 0.28 V vs 0.19 V).
"""

from __future__ import annotations

from repro.pgrid import render_ir_map


def test_fig3_ir_drop_maps(benchmark, study):
    result = benchmark.pedantic(study.figure3, rounds=1, iterations=1)
    print()
    for label in ("P1", "P2"):
        data = result[label]
        print(
            f"{label}: pattern #{data['pattern_index']}, "
            f"SCAP(B5) {data['scap_mw_b5']:.2f} mW, "
            f"worst VDD {data['worst_drop_vdd_v']*1000:.0f} mV, "
            f"worst VSS {data['worst_drop_vss_v']*1000:.0f} mV, "
            f"red {data['red_fraction']:.1%}"
        )
        print(render_ir_map(study.model.vdd_grid, data["ir"].drop_vdd))

    p1, p2 = result["P1"], result["P2"]
    assert p1["scap_mw_b5"] >= p2["scap_mw_b5"]
    assert p1["worst_drop_vdd_v"] >= p2["worst_drop_vdd_v"]
    assert p1["red_fraction"] >= p2["red_fraction"]
