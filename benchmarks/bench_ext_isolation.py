"""Extension — the isolation DFT the paper wished it had.

"Ideally, we would like to have isolation logic for block B5 to avoid
switching activity while testing other blocks ... Since we do not have
any such DFT logic, our major challenge is how we can use the existing
ATPG tools capability" (Section 3).  Our generated SOC's load-enable
registers *are* that isolation hook, so this ablation compares the
paper's fill-0 workaround against hard isolation constraints.
"""

from __future__ import annotations

import numpy as np

from repro.core import NoiseAwarePatternGenerator, validate_pattern_set
from repro.reporting import format_table


def test_ext_isolation_vs_fill0(benchmark, tiny_study):
    design = tiny_study.design

    def run_both():
        out = {}
        for label, isolate in (("fill0", False), ("isolation", True)):
            flow = NoiseAwarePatternGenerator(
                design, seed=1, isolate_untargeted=isolate,
                backtrack_limit=60,
            ).run()
            out[label] = flow
        return out

    flows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for label, flow in flows.items():
        report = validate_pattern_set(
            tiny_study.calculator, flow.pattern_set,
            tiny_study.thresholds_mw,
        )
        series = report.scap_series("B5")
        prefix = series[: flow.step_boundaries[-1]]
        rows.append(
            {
                "mode": label,
                "patterns": flow.n_patterns,
                "coverage": flow.test_coverage,
                "prefix_max_SCAP_B5_mW": float(prefix.max())
                if prefix.size else 0.0,
                "violations_B5": len(report.violating_patterns("B5")),
            }
        )
    print()
    print(format_table(rows, title="fill-0 workaround vs hard isolation:"))

    by_mode = {r["mode"]: r for r in rows}
    # Hard isolation is at least as quiet as the fill-0 workaround
    # before B5 is targeted.
    assert (
        by_mode["isolation"]["prefix_max_SCAP_B5_mW"]
        <= by_mode["fill0"]["prefix_max_SCAP_B5_mW"] + 1e-9
    )
    assert abs(
        by_mode["isolation"]["coverage"] - by_mode["fill0"]["coverage"]
    ) < 0.12