"""Ablation — power-grid resolution.

Sweeps the rail-mesh resolution and checks that the worst statistical
IR-drop is stable (the solve is not an artifact of the grid pitch)
while cost grows with node count.
"""

from __future__ import annotations

import numpy as np

from repro.pgrid import GridModel, statistical_ir_analysis
from repro.reporting import format_table

RESOLUTIONS = (12, 24, 36)


def test_ablation_grid_resolution(benchmark, study):
    design = study.design
    base = study.model
    seg = base.vdd_grid.seg_res_ohm
    pad = base.vdd_grid.pad_res_ohm

    def sweep():
        out = {}
        for n in RESOLUTIONS:
            # A uniform mesh has pitch-independent sheet resistance when
            # the per-segment resistance is held constant, so the same
            # seg_res_ohm at every resolution models the same metal.
            model = GridModel.build(
                design, nx=n, ny=n,
                seg_res_ohm=seg, pad_res_ohm=pad,
            )
            rows = statistical_ir_analysis(model, window_fraction=0.5)
            out[n] = max(r.worst_drop_vdd_v for r in rows)
        return out

    worst = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        [{"grid": f"{n}x{n}", "worst_VDD_drop_V": v}
         for n, v in worst.items()],
        title="Grid-resolution ablation (constant sheet resistance):",
    ))
    values = np.array(list(worst.values()))
    # Worst drop is not a grid-pitch artifact: bounded spread.
    assert values.max() / values.min() < 1.75
