"""Extension — path-delay testing under supply noise (the paper's
reference [19] scenario).

Krstic et al. showed that power-supply noise *along the tested path*
lengthens its delay; the fill of the path test's don't-care bits
controls that noise.  This bench generates non-robust tests for paths
extracted from real pattern simulations, fills each test cube two ways
(random vs 0), and measures the tested endpoint's IR-scaled delay under
both — the noisy fill slows the very path being measured.
"""

from __future__ import annotations

import math

import numpy as np

from repro.atpg import generate_path_test, path_from_timing
from repro.atpg.fill import apply_fill, care_mask
from repro.atpg.patterns import Pattern
from repro.atpg.twoframe import TwoFrameState
from repro.core.irscale import ir_scaled_endpoint_comparison
from repro.reporting import format_table


def _capture_flop(netlist, path):
    d_net = path.nets(netlist)[-1]
    return netlist.flop_d_loads_of(d_net)[0]


def test_ext_path_delay_noise(benchmark, tiny_study):
    study = tiny_study
    netlist = study.design.netlist
    calc = study.calculator
    state = TwoFrameState(netlist, "clka")
    patterns = study.conventional().pattern_set

    # Extract sensitizable paths from real simulations.
    paths = []
    for pattern in list(patterns)[:16]:
        timing = calc.simulate_pattern(pattern.v1_dict())
        eps = [
            (fi, float(timing.last_arrival_ns[netlist.flops[fi].d]))
            for fi in calc.launch_time
        ]
        eps = [(fi, a) for fi, a in eps if not math.isnan(a)]
        if not eps:
            continue
        worst = max(eps, key=lambda t: t[1])[0]
        path = path_from_timing(netlist, timing, worst)
        if path is not None and len(path.gates) >= 3:
            paths.append(path)

    def run():
        rng = np.random.default_rng(3)
        rows = []
        for path in paths[:6]:
            result = None
            for transition in ("rise", "fall"):
                candidate = generate_path_test(
                    state, path, transition, max_backtracks=150
                )
                if candidate.success:
                    result = candidate
                    break
            if result is None:
                continue
            capture = _capture_flop(netlist, path)
            delays = {}
            for fill in ("random", "0"):
                v1 = apply_fill(result.cube, netlist.n_flops, fill,
                                scan=study.design.scan, rng=rng)
                pattern = Pattern(0, v1,
                                  care_mask(result.cube, netlist.n_flops),
                                  "clka", fill)
                comp = ir_scaled_endpoint_comparison(
                    calc, study.model, pattern
                )
                delays[fill] = comp.scaled_ns.get(capture, 0.0)
            if delays.get("random", 0) and delays.get("0", 0):
                rows.append(
                    {
                        "path_gates": len(path.gates),
                        "ir_delay_random_fill_ns": delays["random"],
                        "ir_delay_fill0_ns": delays["0"],
                        "noise_penalty_ns": delays["random"] - delays["0"],
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        title="Tested-path IR-scaled delay by fill (non-robust path tests):",
    ))
    assert rows, "no successful path tests"
    penalties = [r["noise_penalty_ns"] for r in rows]
    # On average, the noisy fill slows the tested path itself.
    assert float(np.mean(penalties)) > 0.0