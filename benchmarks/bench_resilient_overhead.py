"""Overhead of the fault-tolerant execution layer.

The resilient per-chunk path (futures, deadlines, retry bookkeeping)
replaced the bare ``pool.map`` under every parallel hot loop, so its
steady-state cost on a *healthy* pool must be noise.  This bench grades
one SCAP batch three ways — serial reference, resilient pool, and the
resilient pool surviving an injected worker kill — and reports the
clean-pool overhead and the price of one recovery.
"""

from __future__ import annotations

import time

import numpy as np

from repro import ScapCalculator
from repro.perf import chaos
from repro.perf.resilient import execution_policy, last_report


def test_resilient_overhead_and_recovery_cost(benchmark, tiny_study):
    design = tiny_study.design
    domain = tiny_study.domain
    rng = np.random.default_rng(17)
    matrix = rng.integers(0, 2, size=(192, design.netlist.n_flops))

    serial_calc = ScapCalculator(design, domain)
    t0 = time.perf_counter()
    reference = serial_calc.profile_patterns(matrix)
    serial_s = time.perf_counter() - t0

    def clean_parallel():
        return ScapCalculator(design, domain).profile_patterns(
            matrix, n_workers=2
        )

    clean = benchmark.pedantic(clean_parallel, rounds=1, iterations=1)
    clean_s = last_report().elapsed_s
    assert clean == reference

    chaos_calc = ScapCalculator(design, domain)
    spec = chaos.ChaosSpec(kill={0: (0,)})
    t0 = time.perf_counter()
    with chaos.inject(spec), execution_policy(
        backoff_base_s=0.001, jitter=0.0
    ):
        survived = chaos_calc.profile_patterns(matrix, n_workers=2)
    chaos_s = time.perf_counter() - t0
    assert survived == reference
    report = last_report()
    assert report.pool_rebuilds >= 1 and not report.serial_fallback

    print()
    print(
        f"SCAP grading of {matrix.shape[0]} patterns: serial "
        f"{serial_s*1000:.0f} ms, resilient pool {clean_s*1000:.0f} ms "
        f"clean, {chaos_s*1000:.0f} ms surviving one SIGKILL "
        f"({report.pool_rebuilds} rebuild(s), "
        f"{report.total_retries} retried chunk attempt(s))"
    )
