"""SOC test-scheduling Pareto benchmark: greedy sessions vs rectangle
bin-packing with wrapper/TAM co-optimisation.

For generated SOCs of increasing block count — each block offering
several wrapper-width candidates, so the schedulers genuinely trade
TAM lines against test time — both strategies sweep a range of
chip-wide power budgets.  The resulting (budget, makespan) Pareto
curves are asserted, not just reported:

* bin packing never loses to greedy at any swept budget,
* every schedule respects the power envelope and the TAM width at
  every instant (``TestSchedule.validate``).

A second section schedules the real Turbo-Eagle design from its staged
flow's pattern counts, with block powers from the sound
:class:`~repro.power.static_bound.StaticScapBound` chip-wide bounds.

Emits machine-readable ``BENCH_sched.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.scheduling import (
    ScheduleBudget,
    budget_sweep,
    generate_block_specs,
    get_scheduler,
    specs_from_flow,
)
from repro.power.static_bound import StaticScapBound
from repro.reporting import format_table

_OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_sched.json"

#: TAM lines available chip-wide for the synthetic SOC families.
TAM_WIDTH = 16


def _block_counts():
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale == "tiny":
        return [8]
    if scale == "small":
        return [8, 16, 32]
    return [8, 16, 32, 64]


def _sweep(specs, tam_width):
    """Both schedulers over the budget sweep; returns Pareto rows."""
    rows = []
    for budget_mw in budget_sweep(specs):
        budget = ScheduleBudget(power_mw=budget_mw, tam_width=tam_width)
        row = {"budget_mw": round(budget_mw, 4)}
        for strategy in ("greedy", "binpack"):
            schedule = get_scheduler(strategy).schedule(specs, budget)
            schedule.validate()
            assert schedule.peak_power_mw <= budget_mw + 1e-9
            row[f"{strategy}_makespan_us"] = round(schedule.makespan_us, 4)
            row[f"{strategy}_peak_mw"] = round(schedule.peak_power_mw, 4)
        # The acceptance bar: packing never loses to the greedy
        # baseline at any budget.
        assert (
            row["binpack_makespan_us"] <= row["greedy_makespan_us"] + 1e-9
        )
        row["gain_pct"] = round(
            100.0
            * (row["greedy_makespan_us"] - row["binpack_makespan_us"])
            / row["greedy_makespan_us"],
            2,
        )
        rows.append(row)
    return rows


def _merge_out(section, payload):
    data = {}
    if _OUT_PATH.exists():
        data = json.loads(_OUT_PATH.read_text())
    data[section] = payload
    _OUT_PATH.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")


def test_sched_pareto_synthetic(benchmark):
    counts = _block_counts()

    def run():
        return {
            n: _sweep(generate_block_specs(n, seed=2007), TAM_WIDTH)
            for n in counts
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for n, rows in curves.items():
        print(format_table(
            rows,
            columns=[
                "budget_mw", "greedy_makespan_us", "binpack_makespan_us",
                "gain_pct",
            ],
            title=f"{n}-block synthetic SOC (TAM width {TAM_WIDTH}):",
        ))
    _merge_out("synthetic", {
        "tam_width": TAM_WIDTH,
        "curves": {str(n): rows for n, rows in curves.items()},
    })
    # On every multi-width design the packer must strictly beat greedy
    # somewhere along the curve, not merely tie via its fallback.
    for n, rows in curves.items():
        assert any(row["gain_pct"] > 0.0 for row in rows), (
            f"bin packing never improved on greedy for the {n}-block SOC"
        )


def test_sched_pareto_real_design(benchmark, tiny_study):
    design = tiny_study.design
    flow = tiny_study.staged()
    bound = StaticScapBound(design, design.dominant_domain())
    specs = specs_from_flow(design, flow, bound.test_power_bounds_mw())

    def run():
        return _sweep(specs, design.tam_width)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        columns=[
            "budget_mw", "greedy_makespan_us", "binpack_makespan_us",
            "gain_pct",
        ],
        title=(
            f"{design.name} staged flow "
            f"(TAM width {design.tam_width}):"
        ),
    ))
    _merge_out("real_design", {
        "design": design.name,
        "tam_width": design.tam_width,
        "n_blocks": len(specs),
        "rows": rows,
    })
