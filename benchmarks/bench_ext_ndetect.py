"""Extension — N-detect vs supply noise.

N-detect test sets catch more un-modelled defects but multiply pattern
count *and* total switching delivered to the die.  This bench measures
the quality-vs-noise trade the paper's methodology would have to manage
in an N-detect flow.
"""

from __future__ import annotations

import numpy as np

from repro.atpg import AtpgEngine
from repro.core import validate_pattern_set
from repro.reporting import format_table


def test_ext_ndetect_noise_cost(benchmark, tiny_study):
    study = tiny_study
    design = study.design

    def run():
        out = {}
        for n in (1, 2, 3):
            engine = AtpgEngine(
                design.netlist, design.dominant_domain(),
                scan=design.scan, seed=4,
            )
            out[n] = engine.run(fill="random", n_detect=n)
        return out

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n, res in runs.items():
        report = validate_pattern_set(
            study.calculator, res.pattern_set, study.thresholds_mw
        )
        series = report.scap_series("B5")
        rows.append(
            {
                "n_detect": n,
                "patterns": res.n_patterns,
                "coverage": res.test_coverage,
                "violations_B5": len(report.violating_patterns("B5")),
                "total_B5_energy_mWns": float(
                    sum(p.energy_fj("B5") for p in report.profiles)
                ) * 1e-3,
            }
        )
    print()
    print(format_table(rows, title="N-detect vs noise:"))

    assert runs[3].n_patterns > runs[1].n_patterns
    # Total switching delivered to B5 grows with N.
    assert rows[2]["total_B5_energy_mWns"] > rows[0]["total_B5_energy_mWns"]