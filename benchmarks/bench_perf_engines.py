"""Throughput of the batched fault-sim / SCAP grading pipeline.

Measures the perf-critical engines against *seed references* — faithful
re-implementations of the original algorithms (quadratic pack loop,
full-cone interpreted fault simulation, registry-dispatch event loop) —
so the reported speedups are against the pre-optimisation code path,
not a moving target.  Every optimised result is asserted bit-identical
to its reference before a number is written.

Host reporting is honest: ``host_cpus`` is the *usable* core count
(affinity/cgroup aware, not ``os.cpu_count()``), and when it is below
the requested worker count the parallel numbers are flagged
``parallel_comparable: false`` instead of being read as regressions.
The parallel-beats-seed gate is asserted only on comparable hosts.

Emits machine-readable ``BENCH_perf.json`` at the repo root.
"""

from __future__ import annotations

import heapq
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.atpg.faults import build_fault_universe, collapse_faults
from repro.atpg.fsim import FaultSimulator
from repro.netlist.cells import CELL_FUNCTIONS
from repro.perf.cache import PatternProfileCache
from repro.perf.dispatch import usable_cpus
from repro.perf.kernel_cache import KernelCache, use_kernel_cache
from repro.perf.pool import resolve_workers
from repro.perf.shm import active_segments
from repro.power.calculator import ScapCalculator
from repro.power.scap import PatternPowerProfile
from repro.sim.event import TimingResult, build_launch_events
from repro.sim.logic import loc_launch_capture, pack_matrix
from repro.soc import build_turbo_eagle

N_FSIM_PATTERNS = 256
N_SCAP_PATTERNS = 64
REQUESTED_WORKERS = 4

_OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_perf.json"


@pytest.fixture(scope="module")
def rig():
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    design = build_turbo_eagle(scale, seed=2007)
    domain = design.dominant_domain()
    nl = design.netlist
    reps, _ = collapse_faults(nl, build_fault_universe(nl))
    rng = np.random.default_rng(2007)
    matrix = rng.integers(
        0, 2, size=(N_FSIM_PATTERNS, nl.n_flops), dtype=np.uint8
    )
    return scale, design, domain, list(reps), matrix


# ----------------------------------------------------------------------
# seed references
# ----------------------------------------------------------------------
def seed_pack(v1_matrix):
    """The original quadratic bit loop."""
    n_pat, n_cols = v1_matrix.shape
    packed = {}
    for col in range(n_cols):
        word = 0
        for row in range(n_pat):
            if v1_matrix[row, col]:
                word |= 1 << row
        packed[col] = word
    return packed, (1 << n_pat) - 1


def seed_fault_sim(fsim, domain, matrix, faults):
    """The original algorithm: quadratic pack, one full-width word,
    whole-cone interpreted evaluation, no activation restriction."""
    nl = fsim.netlist
    packed, mask = seed_pack(matrix)
    cyc = loc_launch_capture(fsim.sim, packed, domain, mask=mask)
    f1, g2 = cyc.frame1, cyc.frame2
    detections = {}
    for fault in faults:
        site = fault.net
        if fault.initial_value == 1:
            act = f1[site] & mask
            forced = mask
        else:
            act = ~f1[site] & mask
            forced = 0
        if act == 0:
            continue
        gates, captures = fsim.cone_of(site)
        if not captures:
            continue
        faulty = {site: forced}
        get = faulty.get
        for gi in gates:
            g = nl.gates[gi]
            faulty[g.output] = CELL_FUNCTIONS[g.kind](
                [get(p, g2[p]) for p in g.inputs], mask
            )
        diff = 0
        for c in captures:
            diff |= get(c, g2[c]) ^ g2[c]
        det = diff & act
        if det:
            detections[fault] = det
    return detections


def seed_event_simulate(sim, initial_values, launch_events, capture_time_ns):
    """The original event loop: registry dispatch through
    ``CELL_FUNCTIONS`` with a per-event input list comprehension."""
    n_nets = sim.netlist.n_nets
    horizon_ns = 2.0 * capture_time_ns
    values = list(initial_values)
    toggles = np.zeros(n_nets, dtype=np.int32)
    last_arrival = np.full(n_nets, np.nan)
    energy_total = 0.0
    energy_by_block = {}
    heap = []
    seq = 0
    for t, net, val in launch_events:
        heapq.heappush(heap, (t, seq, net, val & 1))
        seq += 1
    stw = 0.0
    n_transitions = 0
    truncated = False
    fanouts = sim._fanout_gates
    gate_fn = sim._gate_fn
    gate_ins = sim._gate_ins
    gate_out = sim._gate_out
    gate_delay = sim._gate_delay
    energy_of_net = sim._energy_of_net
    block_of_net = sim._block_of_net
    while heap:
        t, _s, net, val = heapq.heappop(heap)
        if t > horizon_ns:
            truncated = True
            break
        if values[net] == val:
            continue
        values[net] = val
        n_transitions += 1
        toggles[net] += 1
        last_arrival[net] = t
        if t > stw:
            stw = t
        energy = energy_of_net[net]
        energy_total += energy
        block = block_of_net[net]
        if block is not None:
            energy_by_block[block] = energy_by_block.get(block, 0.0) + energy
        for gi in fanouts[net]:
            new_out = gate_fn[gi]([values[p] for p in gate_ins[gi]], 1)
            heapq.heappush(
                heap, (t + gate_delay[gi], seq, gate_out[gi], new_out)
            )
            seq += 1
    return TimingResult(
        stw_ns=stw,
        capture_time_ns=capture_time_ns,
        n_transitions=n_transitions,
        toggles=toggles,
        last_arrival_ns=last_arrival,
        energy_fj_total=energy_total,
        energy_fj_by_block=energy_by_block,
        truncated=truncated,
    )


def seed_profile_patterns(calc, matrix):
    """The original grading loop: one logic + one timing simulation per
    pattern, no lanes, no cache, no pool."""
    profiles = []
    for idx, row in enumerate(matrix):
        v1 = {fi: int(b) for fi, b in enumerate(row)}
        cyc = loc_launch_capture(calc.logic, v1, calc.domain)
        launch = {fi: cyc.launch_state[fi] for fi in calc.launch_time}
        events = build_launch_events(
            calc.design.netlist,
            cyc.frame1,
            launch,
            calc.launch_time,
            calc.delays.flop_ck2q_ns,
        )
        result = seed_event_simulate(
            calc._event, cyc.frame1, events, calc.period_ns
        )
        profiles.append(
            PatternPowerProfile.from_timing(idx, calc.period_ns, result)
        )
    return profiles


# ----------------------------------------------------------------------
def test_perf_pipeline(benchmark, rig):
    scale, design, domain, faults, matrix = rig
    nl = design.netlist
    host_cpus = usable_cpus()
    parallel_comparable = host_cpus >= REQUESTED_WORKERS
    report = {
        "scale": scale,
        "design": {
            "gates": nl.n_gates,
            "nets": nl.n_nets,
            "flops": nl.n_flops,
            "collapsed_faults": len(faults),
        },
        # Usable cores (affinity/cgroup aware), not the machine total:
        # grading pools can only ever run on these.
        "host_cpus": host_cpus,
        "host_cpus_total": os.cpu_count(),
        "requested_workers": REQUESTED_WORKERS,
        "effective_workers": resolve_workers(REQUESTED_WORKERS, len(faults)),
        # With fewer usable cores than workers, pool numbers measure
        # oversubscription, not parallelism — flag them, don't read
        # them as regressions.
        "parallel_comparable": parallel_comparable,
    }

    # -- pack ----------------------------------------------------------
    t0 = time.perf_counter()
    packed_seed, mask_seed = seed_pack(matrix)
    t1 = time.perf_counter()
    packed_vec, mask_vec = pack_matrix(matrix)
    t2 = time.perf_counter()
    assert packed_vec == packed_seed and mask_vec == mask_seed
    report["pack"] = {
        "n_patterns": int(matrix.shape[0]),
        "seed_s": t1 - t0,
        "vectorized_s": t2 - t1,
        "speedup_vs_seed": (t1 - t0) / max(1e-9, t2 - t1),
    }

    # -- bit-parallel logic sim ----------------------------------------
    lsim = FaultSimulator(nl, domain, kernel_cache=None).sim
    loc_launch_capture(lsim, packed_vec, domain, mask=mask_vec)  # warm
    t0 = time.perf_counter()
    for _ in range(3):
        loc_launch_capture(lsim, packed_vec, domain, mask=mask_vec)
    logic_s = (time.perf_counter() - t0) / 3

    big = lsim.run(packed_vec, mask=mask_vec, engine="bigint")
    vec = lsim.run(packed_vec, mask=mask_vec, engine="vector")
    assert vec == big, "vector logic engine is not bit-identical"
    t0 = time.perf_counter()
    for _ in range(3):
        lsim.run(packed_vec, mask=mask_vec, engine="bigint")
    bigint_s = (time.perf_counter() - t0) / 3
    t0 = time.perf_counter()
    for _ in range(3):
        lsim.run(packed_vec, mask=mask_vec, engine="vector")
    vector_s = (time.perf_counter() - t0) / 3
    report["logic_sim"] = {
        "n_patterns": int(matrix.shape[0]),
        "patterns_per_s": matrix.shape[0] / logic_s,
        "bigint_propagate_s": bigint_s,
        "vector_propagate_s": vector_s,
        "speedup_vector_vs_bigint": bigint_s / max(1e-9, vector_s),
        "bit_identical": True,
    }

    # -- persistent kernel cache ---------------------------------------
    # Cold: codegen + compile() every cone, persist to disk.  Warm: a
    # fresh simulator marshal-loads the same kernels — this is what
    # every pool worker (and every later run) pays instead of the
    # compile tax.
    cache_dir = tempfile.mkdtemp(prefix="repro-kcache-bench-")
    kcache = KernelCache(cache_dir)
    with use_kernel_cache(kcache):
        t0 = time.perf_counter()
        FaultSimulator(nl, domain).warm_kernels(faults)
        cold_compile_s = time.perf_counter() - t0
    # Warm from *disk* through a fresh cache instance — what a pool
    # worker (fresh process) pays.  The original instance has the table
    # memoized in memory, which is the cheaper same-process path.
    with use_kernel_cache(KernelCache(cache_dir)):
        t0 = time.perf_counter()
        fsim = FaultSimulator(nl, domain)
        residual = fsim.warm_kernels(faults)
        warm_load_s = time.perf_counter() - t0
    assert residual == 0, "warm cache still compiled kernels"
    with use_kernel_cache(kcache):
        t0 = time.perf_counter()
        assert FaultSimulator(nl, domain).warm_kernels(faults) == 0
        warm_memo_s = time.perf_counter() - t0
    report["kernel_cache"] = {
        "cold_compile_s": cold_compile_s,
        "warm_load_s": warm_load_s,
        "warm_memo_s": warm_memo_s,
        "speedup_warm_vs_cold": cold_compile_s / max(1e-9, warm_load_s),
        "entries": len(kcache.entries()),
        "hits": kcache.hits,
        "stores": kcache.stores,
    }

    # -- fault simulation ----------------------------------------------
    # All contenders run steady-state on the warm cache; the one-time
    # per-netlist cost is what the kernel_cache section reports.
    det_seed = seed_fault_sim(fsim, domain, matrix, faults)  # warm cones
    t0 = time.perf_counter()
    det_seed = seed_fault_sim(fsim, domain, matrix, faults)
    seed_s = time.perf_counter() - t0

    det_batch = benchmark.pedantic(
        lambda: fsim.run_batch(matrix, faults, lane_width=matrix.shape[0]),
        rounds=3,
        iterations=1,
    )
    t0 = time.perf_counter()
    fsim.run_batch(matrix, faults, lane_width=matrix.shape[0])
    batch_s = time.perf_counter() - t0

    with use_kernel_cache(kcache):
        t0 = time.perf_counter()
        det_par = fsim.run_batch(
            matrix, faults, lane_width=matrix.shape[0],
            n_workers=REQUESTED_WORKERS, transport="inherit",
        )
        par_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        det_shm = fsim.run_batch(
            matrix, faults, lane_width=matrix.shape[0],
            n_workers=REQUESTED_WORKERS, transport="shm",
        )
        shm_s = time.perf_counter() - t0
    assert active_segments() == [], "leaked shared-memory segments"

    t0 = time.perf_counter()
    det_drop = fsim.run_batch(matrix, faults, lane_width=64, drop=True)
    drop_s = time.perf_counter() - t0

    assert det_batch == det_seed, "batched fault sim is not bit-identical"
    assert det_par == det_seed, "parallel fault sim is not bit-identical"
    assert det_shm == det_seed, "shm-pool fault sim is not bit-identical"
    assert set(det_drop) == set(det_seed)

    fp = len(faults) * matrix.shape[0]
    modes = {
        "batch": seed_s / batch_s,
        "parallel": seed_s / par_s,
        "parallel_shm": seed_s / shm_s,
    }
    best_mode = max(modes, key=modes.get)
    report["fault_sim"] = {
        "n_patterns": int(matrix.shape[0]),
        "n_faults": len(faults),
        "detected": len(det_seed),
        "kernel_compile_s": warm_load_s,
        "seed_s": seed_s,
        "batch_s": batch_s,
        "parallel_s": par_s,
        "parallel_shm_s": shm_s,
        "drop_grading_s": drop_s,
        "seed_fault_patterns_per_s": fp / seed_s,
        "batch_fault_patterns_per_s": fp / batch_s,
        "speedup_batch_vs_seed": modes["batch"],
        "speedup_parallel_vs_seed": modes["parallel"],
        "speedup_parallel_shm_vs_seed": modes["parallel_shm"],
        "best_mode": best_mode,
        "speedup_vs_seed": modes[best_mode],
        "bit_identical": True,
    }
    shutil.rmtree(cache_dir, ignore_errors=True)

    # -- SCAP grading --------------------------------------------------
    scap_matrix = matrix[:N_SCAP_PATTERNS]
    calc = ScapCalculator(design, domain)
    calc.profile_patterns(scap_matrix[:2])  # warm

    t0 = time.perf_counter()
    prof_seed = seed_profile_patterns(calc, scap_matrix)
    seed_scap_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    prof_batch = calc.profile_patterns(scap_matrix)
    batch_scap_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    prof_par = calc.profile_patterns(
        scap_matrix, n_workers=REQUESTED_WORKERS, transport="inherit"
    )
    par_scap_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    prof_shm = calc.profile_patterns(
        scap_matrix, n_workers=REQUESTED_WORKERS, transport="shm"
    )
    shm_scap_s = time.perf_counter() - t0
    assert active_segments() == [], "leaked shared-memory segments"

    assert prof_batch == prof_seed, "batched SCAP profiles differ from seed"
    assert prof_par == prof_seed, "parallel SCAP profiles differ from seed"
    assert prof_shm == prof_seed, "shm-pool SCAP profiles differ from seed"

    cache = PatternProfileCache()
    calc_cached = ScapCalculator(design, domain, cache=cache)
    calc_cached.profile_patterns(scap_matrix)
    t0 = time.perf_counter()
    prof_cached = calc_cached.profile_patterns(scap_matrix)
    cached_s = time.perf_counter() - t0
    assert prof_cached == prof_seed

    n = scap_matrix.shape[0]
    modes = {
        "batch": seed_scap_s / batch_scap_s,
        "parallel": seed_scap_s / par_scap_s,
        "parallel_shm": seed_scap_s / shm_scap_s,
    }
    best_mode = max(modes, key=modes.get)
    report["scap"] = {
        "n_patterns": n,
        "engine": calc.engine,
        "seed_ms_per_pattern": 1000 * seed_scap_s / n,
        "batch_ms_per_pattern": 1000 * batch_scap_s / n,
        "parallel_ms_per_pattern": 1000 * par_scap_s / n,
        "parallel_shm_ms_per_pattern": 1000 * shm_scap_s / n,
        "speedup_batch_vs_seed": modes["batch"],
        "speedup_parallel_vs_seed": modes["parallel"],
        "speedup_parallel_shm_vs_seed": modes["parallel_shm"],
        "best_mode": best_mode,
        "speedup_vs_seed": modes[best_mode],
        "profiles_identical": True,
        "cache": {
            "warm_pass_ms_per_pattern": 1000 * cached_s / n,
            "hit_ratio": cache.hit_ratio,
            "speedup_vs_seed": seed_scap_s / max(1e-9, cached_s),
        },
    }

    _OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {_OUT_PATH}")
    print(json.dumps(report, indent=2))

    # Lenient floors: the exact factors are hardware-dependent, but the
    # optimised paths must never lose to the seed algorithms.
    assert report["pack"]["speedup_vs_seed"] > 1.0
    assert report["fault_sim"]["speedup_vs_seed"] > 1.0
    assert report["scap"]["speedup_vs_seed"] > 1.0
    # A warm kernel cache must make a fresh simulator grading-ready in
    # well under the compile tax it replaces, on any hardware.
    assert (
        report["kernel_cache"]["warm_load_s"]
        < report["kernel_cache"]["cold_compile_s"] / 5
    )
    # The point of this PR: on a host with enough usable cores the pool
    # must *win* and the warm load must be negligible in absolute terms
    # — enforced, not hoped for.  Oversubscribed hosts (host_cpus <
    # workers) are flagged non-comparable instead; their numbers are
    # still reported above.
    if parallel_comparable:
        assert report["kernel_cache"]["warm_load_s"] < 0.1
        fault_par = max(
            report["fault_sim"]["speedup_parallel_vs_seed"],
            report["fault_sim"]["speedup_parallel_shm_vs_seed"],
        )
        assert fault_par > 1.0, "parallel fault sim lost to the seed"
