"""Raw engine throughput (the systems numbers a downstream user needs
to budget their own runs)."""

from __future__ import annotations

import time

import numpy as np

from repro.atpg import FaultSimulator, build_fault_universe
from repro.reporting import format_table
from repro.sim import LogicSim, loc_launch_capture


def test_perf_logic_and_fault_sim(benchmark, study):
    design = study.design
    nl = design.netlist
    domain = study.domain
    rng = np.random.default_rng(0)
    n_pat = 64
    v1 = rng.integers(0, 2, size=(n_pat, nl.n_flops), dtype=np.uint8)
    faults = build_fault_universe(nl)
    fsim = FaultSimulator(nl, domain)
    sim = LogicSim(nl)
    packed, mask = fsim.pack(v1)

    def run_fsim():
        return fsim.run(v1, faults)

    t0 = time.perf_counter()
    detections = benchmark.pedantic(run_fsim, rounds=1, iterations=1)
    fsim_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(5):
        loc_launch_capture(sim, packed, domain, mask=mask)
    logic_s = (time.perf_counter() - t0) / 5

    t0 = time.perf_counter()
    study.calculator.profile_pattern(
        {fi: int(v1[0, fi]) for fi in range(nl.n_flops)}, index=0
    )
    timing_s = time.perf_counter() - t0

    rows = [
        {
            "engine": "bit-parallel logic (64-pattern LOC cycle)",
            "throughput": f"{n_pat / logic_s:,.0f} patterns/s",
        },
        {
            "engine": "fault simulation (64 patterns, full universe)",
            "throughput": f"{len(faults) * n_pat / max(1e-9, fsim_s):,.0f}"
                          " fault-patterns/s",
        },
        {
            "engine": "event-driven timing (1 pattern)",
            "throughput": f"{1000 * timing_s:.1f} ms/pattern",
        },
    ]
    print()
    print(format_table(rows, title=f"Engine throughput "
                                   f"({nl.n_gates} gates, "
                                   f"{len(faults)} faults):"))
    print(f"fault sim detected {len(detections)} faults in the batch")
    assert detections