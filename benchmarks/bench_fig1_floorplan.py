"""Figure 1 — the SOC floorplan (B1–B6, B5 central)."""

from __future__ import annotations


def test_fig1_floorplan(benchmark, study):
    art = benchmark.pedantic(study.figure1, rounds=1, iterations=1)
    print()
    print("Figure 1: floorplan (digits = block id)")
    print(art)
    for digit in "123456":
        assert digit in art
    fp = study.design.floorplan
    assert fp.block_at(*fp.center) == "B5"
