"""Extension — the paper's "more ideal scenario" implemented.

"A more ideal scenario would be that the ATPG tool provides different
fill options for don't-care bits in different blocks.  This would allow
us to generate patterns in some blocks with random options yet keep the
switching activity in other blocks to a minimum." (Section 3.1.)

This bench runs the staged flow three ways — conventional, fill-0 (the
paper's workaround), and per-block fill (the wish) — and compares
pattern count, coverage, and B5 noise.
"""

from __future__ import annotations

from repro.core import (
    ConventionalFlow,
    NoiseAwarePatternGenerator,
    validate_pattern_set,
)
from repro.reporting import format_table


def test_ext_per_block_fill(benchmark, tiny_study):
    study = tiny_study
    design = study.design

    def run():
        flows = {
            "conventional": ConventionalFlow(
                design, seed=1, backtrack_limit=60
            ).run(),
            "staged fill-0": NoiseAwarePatternGenerator(
                design, seed=1, backtrack_limit=60, fill="0",
            ).run(),
            "staged per-block": NoiseAwarePatternGenerator(
                design, seed=1, backtrack_limit=60, fill="per-block",
            ).run(),
        }
        return flows

    flows = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    reports = {}
    for label, flow in flows.items():
        report = validate_pattern_set(
            study.calculator, flow.pattern_set, study.thresholds_mw
        )
        reports[label] = (flow, report)
        series = report.scap_series("B5")
        prefix_max = 0.0
        if flow.step_boundaries and flow.step_boundaries[-1] > 0:
            prefix_max = float(
                series[: flow.step_boundaries[-1]].max()
            )
        rows.append(
            {
                "flow": label,
                "patterns": flow.n_patterns,
                "coverage": flow.test_coverage,
                "violations_B5": len(report.violating_patterns("B5")),
                "prefix_max_SCAP_B5": prefix_max,
            }
        )
    print()
    print(format_table(rows, title="The 'more ideal scenario':"))

    conv_flow, conv_rep = reports["conventional"]
    f0_flow, f0_rep = reports["staged fill-0"]
    pb_flow, pb_rep = reports["staged per-block"]
    # Per-block fill recovers coverage lost to fill-0...
    assert pb_flow.test_coverage >= f0_flow.test_coverage - 0.01
    # ...while B5 stays exactly quiet before it is targeted...
    series = pb_rep.scap_series("B5")
    assert (series[: pb_flow.step_boundaries[-1]] == 0.0).all()
    # ...and no noisier than fill-0 overall in B5.
    assert len(pb_rep.violating_patterns("B5")) <= len(
        f0_rep.violating_patterns("B5")
    ) + 2