"""Noise-aware timing pre-screen benchmark: pruned re-simulation vs
the full per-pattern IR-scaled endpoint comparison.

For a generated Turbo-Eagle SOC and an ATPG pattern set, runs the
paper's full endpoint-delay comparison path (nominal event sim +
dynamic IR solve + scaled event sim, every pattern) and the
three-tier static pre-screen (`repro.timing.prescreen_pattern_set`)
over the same patterns, then asserts the gates that make the bound
worth shipping:

* the pre-screen prunes a nonzero fraction of endpoint re-simulations
  (``pruned_endpoint_fraction > 0``),
* it is faster end-to-end than the full path (``speedup > 1``),
* it is *sound*: both paths report exactly the same set of failing
  (pattern, endpoint) misses, and the audited patterns record zero
  bound violations.

Emits machine-readable ``BENCH_timing.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.atpg.engine import AtpgEngine
from repro.config import ElectricalEnv
from repro.core.irscale import ir_scaled_endpoint_comparison
from repro.pgrid import GridModel
from repro.power import ScapCalculator
from repro.reporting import format_table
from repro.soc import build_turbo_eagle
from repro.timing import prescreen_pattern_set

_OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_timing.json"

#: Setup margin used by the bound's pass/fail limit (matches
#: repro.timing.bound.SETUP_NS).
SETUP_NS = 0.12


def _config():
    scale = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    n_patterns = {"tiny": 48, "small": 32}.get(scale, 32)
    return scale, n_patterns


def _full_path_misses(calc, model, patterns, env):
    """The paper's unpruned comparison; returns (misses, elapsed_s)."""
    limit = calc.period_ns - SETUP_NS
    misses = []
    start = time.perf_counter()
    for pi, pattern in enumerate(patterns):
        cmp_ = ir_scaled_endpoint_comparison(
            calc, model, pattern.v1_dict(), env=env
        )
        misses.extend(
            (pi, fi)
            for fi, delay in sorted(cmp_.scaled_ns.items())
            if delay > limit
        )
    return misses, time.perf_counter() - start


def test_timing_prescreen_prunes_and_stays_sound(benchmark):
    scale, n_patterns = _config()
    design = build_turbo_eagle(scale, seed=2007)
    model = GridModel.calibrated(design)
    domain = design.dominant_domain()
    calc = ScapCalculator(design, domain)
    env = ElectricalEnv()
    patterns = (
        AtpgEngine(design.netlist, domain, scan=design.scan, seed=2007)
        .run(max_patterns=n_patterns)
        .pattern_set
    )

    full_misses, full_s = _full_path_misses(calc, model, patterns, env)

    def run():
        start = time.perf_counter()
        summary = prescreen_pattern_set(
            calc, model, patterns, env=env, audit_patterns=0
        )
        return summary, time.perf_counter() - start

    summary, prescreen_s = benchmark.pedantic(run, rounds=1, iterations=1)
    # A separate audited pass records the empirical soundness check
    # (it re-simulates the audited patterns, so it is timed apart).
    audited = prescreen_pattern_set(
        calc, model, patterns, env=env, audit_patterns=3
    )

    speedup = full_s / max(prescreen_s, 1e-9)
    rows = [{
        "patterns": summary.n_patterns,
        "endpoints": summary.endpoints_total,
        "pruned_pct": round(100.0 * summary.pruned_endpoint_fraction, 2),
        "full_s": round(full_s, 4),
        "prescreen_s": round(prescreen_s, 4),
        "speedup": round(speedup, 2),
    }]
    print()
    print(format_table(
        rows,
        columns=[
            "patterns", "endpoints", "pruned_pct", "full_s",
            "prescreen_s", "speedup",
        ],
        title=f"{design.name} ({domain}) timing pre-screen:",
    ))

    payload = {
        "scale": scale,
        "domain": domain,
        "summary": summary.to_dict(),
        "full_path_s": round(full_s, 4),
        "prescreen_s": round(prescreen_s, 4),
        "speedup": round(speedup, 3),
        "misses_full": [list(m) for m in full_misses],
        "misses_prescreen": [list(m) for m in summary.misses],
        "soundness_checked": audited.soundness_checked,
        "soundness_violations": audited.soundness_violations,
    }
    data = {}
    if _OUT_PATH.exists():
        data = json.loads(_OUT_PATH.read_text())
    data["prescreen"] = payload
    _OUT_PATH.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")

    # The acceptance gates.
    assert summary.pruned_endpoint_fraction > 0.0, (
        "the static bound pruned no endpoint re-simulations"
    )
    assert speedup > 1.0, (
        f"pre-screen was not faster than the full path "
        f"({prescreen_s:.4f}s vs {full_s:.4f}s)"
    )
    assert sorted(summary.misses) == sorted(full_misses), (
        "pruned path and full path disagree on failing endpoints"
    )
    assert audited.soundness_violations == 0, (
        f"{audited.soundness_violations} bound violation(s) in "
        f"{audited.soundness_checked} audited endpoint checks"
    )
