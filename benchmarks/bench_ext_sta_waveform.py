"""Extensions — corner-style STA with IR derating, and peak-power
waveforms of the P1/P2 patterns.

The STA bench contrasts the signoff view ("apply a derate everywhere")
with the per-instance derates from a pattern's own IR-drop field — the
comparison the paper's Section 3.2 motivates.  The waveform bench shows
*why* SCAP matters: the same energy, squeezed into the early cycle,
makes a tall current spike.
"""

from __future__ import annotations

import numpy as np

from repro.pgrid import dynamic_ir_for_pattern
from repro.power import power_waveform, render_waveform_ascii
from repro.reporting import format_table
from repro.sim import DelayModel, StaticTimingAnalyzer, derates_from_ir


def test_ext_sta_ir_derating(benchmark, study):
    design = study.design
    dm = DelayModel(design.netlist, design.parasitics)
    sta = StaticTimingAnalyzer(
        design.netlist, dm, design.clock_trees[study.domain],
        period_ns=study.calculator.period_ns, domain=study.domain,
    )
    picks = study.validation("conventional").extreme_patterns("B5")
    pattern = study.conventional().pattern_set[picks["P1"]]
    timing = study.calculator.simulate_pattern(pattern.v1_dict())
    ir = dynamic_ir_for_pattern(study.model, timing, domain=study.domain)
    gate_d, flop_d = derates_from_ir(ir)

    def run():
        return {
            "nominal": sta.analyze(),
            "uniform_corner": sta.analyze(
                gate_derate=np.full(design.netlist.n_gates,
                                    float(gate_d.max())),
                flop_derate=np.full(design.netlist.n_flops,
                                    float(flop_d.max())),
            ),
            "ir_aware": sta.analyze(gate_derate=gate_d,
                                    flop_derate=flop_d),
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        [
            {
                "analysis": name,
                "worst_slack_ns": rep.worst_slack_ns,
                "failing_endpoints": len(rep.failing_endpoints()),
            }
            for name, rep in reports.items()
        ],
        title="STA: nominal vs worst-corner vs per-instance IR derate:",
    ))
    # The uniform worst-corner is the most pessimistic; the IR-aware
    # analysis sits between it and nominal (the paper's argument that
    # corners are "either over optimistic or pessimistic").
    assert (
        reports["uniform_corner"].worst_slack_ns
        <= reports["ir_aware"].worst_slack_ns + 1e-9
    )
    assert (
        reports["ir_aware"].worst_slack_ns
        <= reports["nominal"].worst_slack_ns + 1e-9
    )


def test_ext_power_waveform_p1_vs_p2(benchmark, study):
    picks = study.validation("conventional").extreme_patterns("B5")
    patterns = study.conventional().pattern_set

    def run():
        out = {}
        for label, idx in picks.items():
            timing = study.calculator.simulate_pattern(
                patterns[idx].v1_dict(), record_trace=True
            )
            out[label] = power_waveform(
                study.design.netlist, study.design.parasitics, timing,
                n_bins=40,
            )
        return out

    waves = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, wf in waves.items():
        print(render_waveform_ascii(wf, title=f"{label} current profile:"))
    assert waves["P1"].peak_power_mw >= waves["P2"].peak_power_mw * 0.8
    for wf in waves.values():
        # Peak sits in the early half of the cycle: the STW story.
        assert wf.peak_time_ns < wf.bin_edges_ns[-1] / 2.0