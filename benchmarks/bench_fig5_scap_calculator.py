"""Figure 5 — the SCAP calculator flow, exercised as working code.

The paper's figure is an architecture diagram (VCS + PLI + STAR-RCXT
capacitances); its reproduction is the ScapCalculator pipeline itself.
This bench measures the calculator's per-pattern throughput with the
event-driven engine and cross-checks the fast levelised engine
(which may only under-count hazard energy).
"""

from __future__ import annotations

import numpy as np

from repro import ScapCalculator


def test_fig5_scap_calculator_throughput(benchmark, study):
    patterns = list(study.conventional().pattern_set)[:20]
    calc = study.calculator

    def profile_all():
        return [calc.profile_pattern(p) for p in patterns]

    profiles = benchmark.pedantic(profile_all, rounds=1, iterations=1)
    fast = ScapCalculator(study.design, study.domain, engine="fast")
    fast_profiles = [fast.profile_pattern(p) for p in patterns]

    ratios = [
        f.energy_fj_total / max(e.energy_fj_total, 1e-9)
        for e, f in zip(profiles, fast_profiles)
    ]
    print()
    print(
        f"Figure 5: SCAP calculator on {len(patterns)} patterns; "
        f"fast/event energy ratio min/mean: "
        f"{min(ratios):.2f} / {np.mean(ratios):.2f}"
    )
    mean_scap = np.mean([p.scap_mw() for p in profiles])
    mean_ratio = np.mean([
        p.scap_to_cap_ratio for p in profiles if p.stw_ns > 0
    ])
    print(f"  mean SCAP {mean_scap:.2f} mW, mean SCAP/CAP {mean_ratio:.2f}x")

    for e, f in zip(profiles, fast_profiles):
        assert f.energy_fj_total <= e.energy_fj_total * 1.0001
    assert mean_ratio > 1.3  # STW well below the full cycle
