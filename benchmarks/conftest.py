"""Shared benchmark fixtures.

The benchmark scale defaults to ``small`` (a full run in a few minutes);
set ``REPRO_BENCH_SCALE=bench`` to regenerate the EXPERIMENTS.md numbers
at the larger calibration scale, or ``tiny`` for a smoke run.

The expensive shared state (the two generation flows and their SCAP
validations) is prepared once per session *outside* the measured
regions; each benchmark then measures the regeneration of its own
table/figure.
"""

from __future__ import annotations

import os

import pytest

from repro import CaseStudy


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def study() -> CaseStudy:
    """Case study with both flows and validations pre-computed."""
    cs = CaseStudy(scale=bench_scale(), seed=2007, backtrack_limit=100)
    cs.conventional()
    cs.staged()
    cs.validation("conventional")
    cs.validation("staged")
    return cs


@pytest.fixture(scope="session")
def tiny_study() -> CaseStudy:
    """A tiny case study for benchmarks that re-run whole ATPG flows."""
    return CaseStudy(scale="tiny", seed=2007, backtrack_limit=60)
