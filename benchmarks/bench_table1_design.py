"""Table 1 — design characteristics.

Regenerates the SOC from scratch and reports the paper's Table-1 rows
(clock domains, scan chains, scan flops, negative-edge flops, TDF
universe size).  The measured time is the full design generation:
floorplan, blocks, bus fabric, clock trees, scan insertion and fault
universe construction.
"""

from __future__ import annotations

from repro import CaseStudy
from repro.reporting import format_table

from conftest import bench_scale


def _regenerate():
    study = CaseStudy(scale=bench_scale(), seed=2007)
    return study.table1()


def test_table1_design_characteristics(benchmark):
    table = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    print()
    print(format_table(
        [{"metric": k, "value": v} for k, v in table.items()],
        title="Table 1: design characteristics",
    ))
    assert table["clock_domains"] == 6
    assert table["transition_delay_faults"] > 0
    assert table["negative_edge_scan_flops"] > 0
