#!/usr/bin/env python
"""IR-drop-aware pattern debug (paper Section 3.2 / Figure 7).

Picks a staged pattern that exercises block B5 while staying under the
SCAP threshold, then simulates it twice — nominal delays vs cell delays
scaled by the pattern's own dynamic IR-drop
(``Delay * (1 + 0.9 * dV)``) — and compares every endpoint's measured
path delay.  Shows the two paper regions: endpoints slowed by droopy
logic (Region 1) and endpoints that *appear faster* because their
capture clock arrives late (Region 2).

Run:  python examples/pattern_debug_ir_scaling.py [tiny|small|bench]
"""

import sys

from repro import CaseStudy
from repro.reporting import format_table


def main(scale: str = "tiny") -> None:
    study = CaseStudy(scale=scale)
    print("== preparing staged pattern set ==")
    study.staged()

    print("== two-case simulation of one below-threshold B5 pattern ==")
    comp = study.figure7()
    print(
        f"   pattern #{comp.pattern_index}: worst VDD drop "
        f"{comp.ir.worst_vdd_v*1000:.0f} mV, worst VSS bounce "
        f"{comp.ir.worst_vss_v*1000:.0f} mV"
    )

    deltas = comp.deltas()
    region1 = comp.region1()
    region2 = comp.region2()
    active = len(deltas)
    print(
        f"   {active} active endpoints: {len(region1)} slowed (Region 1), "
        f"{len(region2)} apparently faster (Region 2), "
        f"max slowdown {comp.max_increase_pct():.1f}%"
    )

    netlist = study.design.netlist
    worst = sorted(deltas, key=lambda fi: deltas[fi], reverse=True)[:8]
    rows = [
        {
            "endpoint": netlist.flops[fi].name,
            "block": netlist.flops[fi].block or "(glue)",
            "nominal_ns": comp.nominal_ns[fi],
            "ir_scaled_ns": comp.scaled_ns[fi],
            "delta_ns": deltas[fi],
            "delta_pct": 100.0 * deltas[fi] / comp.nominal_ns[fi],
        }
        for fi in worst
    ]
    print(format_table(rows, title="\n   most-slowed endpoints (Region 1):"))

    if region2:
        rows2 = [
            {
                "endpoint": netlist.flops[fi].name,
                "block": netlist.flops[fi].block or "(glue)",
                "nominal_ns": comp.nominal_ns[fi],
                "ir_scaled_ns": comp.scaled_ns[fi],
                "delta_ns": deltas[fi],
            }
            for fi in sorted(region2, key=lambda fi: deltas[fi])[:5]
        ]
        print(format_table(
            rows2, title="\n   apparently-faster endpoints (Region 2):"
        ))
    else:
        print("\n   (no Region-2 endpoints for this pattern/scale)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
