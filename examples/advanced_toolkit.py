#!/usr/bin/env python
"""Tour of the toolkit beyond the paper's core flow.

* corner-style STA vs per-instance IR derating,
* faster-than-at-speed (FTAS) frequency binning,
* reverse-order pattern compaction,
* power-constrained SOC test scheduling,
* scan shift power by fill policy,
* peak-power waveform and VCD export of one pattern.

Run:  python examples/advanced_toolkit.py [tiny|small]
"""

import io
import sys

import numpy as np

from repro import CaseStudy
from repro.atpg import (
    FaultSimulator,
    build_fault_universe,
    collapse_faults,
    reverse_order_compaction,
)
from repro.core import ftas_analysis, schedule_block_tests, tasks_from_flow
from repro.dft import shift_activity_summary
from repro.pgrid import dynamic_ir_for_pattern
from repro.power import power_waveform, render_waveform_ascii
from repro.reporting import format_table
from repro.sim import (
    DelayModel,
    StaticTimingAnalyzer,
    SwitchingTrace,
    derates_from_ir,
    write_vcd,
)


def main(scale: str = "tiny") -> None:
    study = CaseStudy(scale=scale)
    design = study.design
    patterns = study.conventional().pattern_set

    print("== STA: signoff corner vs per-instance IR derating ==")
    dm = DelayModel(design.netlist, design.parasitics)
    sta = StaticTimingAnalyzer(
        design.netlist, dm, design.clock_trees[study.domain],
        period_ns=study.calculator.period_ns, domain=study.domain,
    )
    picks = study.validation("conventional").extreme_patterns("B5")
    p1 = patterns[picks["P1"]]
    timing = study.calculator.simulate_pattern(p1.v1_dict())
    ir = dynamic_ir_for_pattern(study.model, timing, domain=study.domain)
    gate_d, flop_d = derates_from_ir(ir)
    rows = []
    for name, rep in (
        ("nominal", sta.analyze()),
        ("worst corner", sta.analyze(
            gate_derate=np.full(design.netlist.n_gates, float(gate_d.max())),
            flop_derate=np.full(design.netlist.n_flops, float(flop_d.max())),
        )),
        ("IR-aware", sta.analyze(gate_derate=gate_d, flop_derate=flop_d)),
    ):
        rows.append({"analysis": name,
                     "worst_slack_ns": rep.worst_slack_ns})
    print(format_table(rows))

    print("\n== FTAS: how fast can each pattern safely run? ==")
    report = ftas_analysis(study.calculator, study.model, patterns,
                           sample=8)
    nominal = 1000.0 / report.nominal_period_ns
    freqs = [nominal, nominal * 1.5, nominal * 2.0]
    for label, aware in (("nominal delays", False), ("IR-aware", True)):
        bins = report.bin_patterns(freqs, ir_aware=aware)
        pretty = ", ".join(
            f"{f:.0f}MHz:{bins[f]}" for f in sorted(bins, reverse=True)
        )
        print(f"   {label:>16}: {pretty}")
    print(f"   mean IR headroom loss {report.mean_headroom_loss_pct():.1f}%")

    print("\n== reverse-order compaction ==")
    fsim = FaultSimulator(design.netlist, study.domain)
    reps, _ = collapse_faults(design.netlist,
                              build_fault_universe(design.netlist))
    compacted, stats = reverse_order_compaction(fsim, patterns, reps)
    print(f"   {len(patterns)} -> {len(compacted)} patterns "
          f"({stats['dropped']} dropped at zero coverage cost)")

    print("\n== power-constrained test scheduling ==")
    tasks = tasks_from_flow(design, study.staged(), study.thresholds_mw)
    budget = sum(study.thresholds_mw.values()) * 0.6
    schedule = schedule_block_tests(tasks, power_budget_mw=budget)
    print(f"   budget {budget:.2f} mW -> {len(schedule.sessions)} sessions, "
          f"speedup {schedule.speedup:.2f}x over serial, peak "
          f"{schedule.peak_power_mw:.2f} mW")

    print("\n== shift activity (scan-cell toggles per load) ==")
    summary = shift_activity_summary(patterns, design.scan)
    print(f"   {summary['patterns']:.0f} patterns, mean total "
          f"{summary['mean_total']:.0f} toggles, mean peak/cycle "
          f"{summary['mean_peak']:.1f}")

    print("\n== current waveform + VCD of the P1 pattern ==")
    traced = study.calculator.simulate_pattern(p1.v1_dict(),
                                               record_trace=True)
    wf = power_waveform(design.netlist, design.parasitics, traced,
                        n_bins=36)
    print(render_waveform_ascii(wf))
    buf = io.StringIO()
    write_vcd(SwitchingTrace(design.netlist, traced), buf)
    print(f"   VCD dump: {len(buf.getvalue().splitlines())} lines "
          f"({int(traced.toggles.sum())} events)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
