#!/usr/bin/env python
"""The paper's Section 3: noise-tolerant pattern generation.

Runs both flows on the same SOC and prints the headline comparison:

* conventional (random fill, all blocks at once) — Figure 2 data,
* staged noise-aware (fill-0; B1–B4, then B6, then B5) — Figure 6 data,
* coverage curves of both (Figure 4),
* per-pattern SCAP series in block B5 with the statistical threshold.

Run:  python examples/power_aware_atpg.py [tiny|small|bench]
"""

import sys

import numpy as np

from repro import CaseStudy


def ascii_series(series, threshold, width=72, height=12) -> str:
    """Tiny text scatter of a SCAP series with the threshold line."""
    series = np.asarray(series)
    if series.size == 0:
        return "(no patterns)"
    top = max(series.max(), threshold) * 1.05
    rows = []
    for h in reversed(range(height)):
        lo = top * h / height
        hi = top * (h + 1) / height
        line = []
        thr_row = lo <= threshold < hi
        step = max(1, series.size // width)
        for x in range(0, series.size, step):
            chunk = series[x:x + step]
            if ((chunk >= lo) & (chunk < hi)).any():
                line.append("*")
            elif thr_row:
                line.append("-")
            else:
                line.append(" ")
        label = f"{hi:7.2f} |"
        rows.append(label + "".join(line))
    rows.append(" " * 8 + "+" + "-" * min(width, series.size))
    rows.append(" " * 9 + f"patterns 0..{series.size - 1}   "
                f"('-' = threshold {threshold:.2f} mW)")
    return "\n".join(rows)


def main(scale: str = "tiny") -> None:
    study = CaseStudy(scale=scale)

    print("== running conventional flow (random fill) ==")
    conv = study.conventional()
    print(f"   {conv.n_patterns} patterns, coverage {conv.test_coverage:.1%}")

    print("== running staged noise-aware flow (fill-0, B1-B4 / B6 / B5) ==")
    stag = study.staged()
    print(
        f"   {stag.n_patterns} patterns, coverage {stag.test_coverage:.1%}, "
        f"step boundaries {stag.step_boundaries}"
    )

    print("\n== Figure 2: SCAP in B5, conventional patterns ==")
    f2 = study.figure2()
    print(ascii_series(f2["scap_mw_b5"], f2["threshold_mw"]))
    print(
        f"   {len(f2['violating_patterns'])}/{f2['n_patterns']} patterns "
        f"above the B5 threshold"
    )

    print("\n== Figure 6: SCAP in B5, staged fill-0 patterns ==")
    f6 = study.figure6()
    print(ascii_series(f6["scap_mw_b5"], f6["threshold_mw"]))
    print(
        f"   {len(f6['violating_patterns'])}/{f6['n_patterns']} patterns "
        f"above the B5 threshold "
        f"(B5 first targeted at pattern {f6['step_boundaries'][-1]})"
    )

    print("\n== Figure 4: coverage vs pattern count ==")
    f4 = study.figure4()
    for name, curve in f4.items():
        marks = [curve[int(i * (len(curve) - 1) / 6)] for i in range(7)]
        line = "  ".join(f"({x},{y:.2f})" for x, y in marks)
        print(f"   {name:>12}: {line}")

    print("\n== headline ==")
    hc = study.headline_comparison()
    print(
        f"   violations in B5: conventional "
        f"{hc['conventional_violations_b5']}/{hc['conventional_patterns']} "
        f"({hc['conventional_violation_fraction_b5']:.1%}) -> staged "
        f"{hc['staged_violations_b5']}/{hc['staged_patterns']} "
        f"({hc['staged_violation_fraction_b5']:.1%})"
    )
    print(
        f"   pattern count increase: {hc['pattern_increase_pct']:.1f}% "
        f"(paper: ~8-11% at 23K-flop scale)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
