#!/usr/bin/env python
"""The paper's Section 2 case study: statistical and dynamic IR-drop.

Reproduces, on the synthetic SOC:

* Table 1 / Table 2 — design and clock-domain characteristics,
* Table 3 — vectorless statistical IR-drop per block, full-cycle
  (Case 1) vs half-cycle (Case 2) windows,
* Table 4 — CAP vs SCAP power and IR-drop for one pattern,
* Figure 3 — dynamic IR-drop maps of the worst (P1) and near-threshold
  (P2) conventional patterns.

Run:  python examples/case_study_ir_drop.py [tiny|small|bench]
"""

import sys

from repro import CaseStudy
from repro.pgrid import render_ir_map
from repro.reporting import format_table


def main(scale: str = "tiny") -> None:
    study = CaseStudy(scale=scale)

    print("== Table 1: design characteristics ==")
    t1 = study.table1()
    print(format_table([{"metric": k, "value": v} for k, v in t1.items()]))

    print("\n== Table 2: clock domain analysis ==")
    print(format_table(study.table2()))

    print("\n== Table 3: statistical IR-drop (30% toggle rate) ==")
    t3 = study.table3()
    for label, rows in t3.items():
        print(f"\n   {label}:")
        print(
            format_table(
                [
                    {
                        "block": r.block,
                        "window_ns": r.window_ns,
                        "avg_power_mW": r.avg_power_mw,
                        "worst_VDD_drop_V": r.worst_drop_vdd_v,
                        "worst_VSS_bounce_V": r.worst_drop_vss_v,
                    }
                    for r in rows
                ]
            )
        )

    print("\n== Table 4: CAP vs SCAP for one conventional pattern ==")
    t4 = study.table4()
    print(
        format_table(
            [
                {"model": name, **values}
                for name, values in t4.items()
            ]
        )
    )
    ratio = t4["SCAP"]["avg_power_mw"] / t4["CAP"]["avg_power_mw"]
    print(f"   SCAP/CAP power ratio: {ratio:.2f}x (paper: >2x)")

    print("\n== Figure 3: dynamic IR-drop maps, P1 (worst) vs P2 ==")
    f3 = study.figure3()
    for label, data in f3.items():
        print(
            f"\n   {label}: pattern #{data['pattern_index']}, "
            f"SCAP(B5) {data['scap_mw_b5']:.2f} mW, "
            f"STW {data['stw_ns']:.2f} ns, "
            f"worst VDD drop {data['worst_drop_vdd_v']*1000:.0f} mV, "
            f"red region {data['red_fraction']:.1%} of die"
        )
        print(
            render_ir_map(
                study.model.vdd_grid,
                data["ir"].drop_vdd,
                title=f"   VDD IR-drop map ({label}):",
            )
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
