#!/usr/bin/env python
"""Production debug workflow: failures -> diagnosis -> repair -> yield.

Plays out the scenario the paper's methodology exists to prevent:

1. generate a conventional (noisy) pattern set,
2. a 'defective chip' fails on the tester — diagnose the fault site
   from its failure syndrome,
3. a *good* chip also fails — the overkill analysis shows the failures
   trace to the patterns' own supply noise, not silicon,
4. repair the violating patterns by re-filling their don't-cares,
5. quantify the yield impact across a chip population before/after.

Run:  python examples/production_debug_workflow.py [tiny|small]
"""

import sys

import numpy as np

from repro import CaseStudy
from repro.atpg import (
    TransitionFaultDiagnoser,
    build_fault_universe,
    collapse_faults,
)
from repro.core import (
    binning_simulation,
    overkill_analysis,
    repair_pattern_set,
)
from repro.reporting import format_table


def main(scale: str = "tiny") -> None:
    study = CaseStudy(scale=scale)
    design = study.design
    patterns = study.conventional().pattern_set
    print(f"== tester setup: {len(patterns)} conventional patterns ==")

    # ------------------------------------------------------------------
    print("\n== step 1: a defective chip fails; diagnose it ==")
    diagnoser = TransitionFaultDiagnoser(design.netlist, study.domain)
    reps, _ = collapse_faults(
        design.netlist, build_fault_universe(design.netlist)
    )
    flow = study.conventional()
    detected = [f for r in flow.step_results for f in r.detected]
    rng = np.random.default_rng(7)
    truth = detected[int(rng.integers(len(detected)))]
    syndrome = diagnoser.observe(patterns, truth)
    result = diagnoser.diagnose(patterns, syndrome, reps)
    print(f"   injected defect: {truth.describe(design.netlist)}")
    print(f"   syndrome: {len(syndrome)} failing (pattern, flop) pairs")
    print(format_table(
        [
            {
                "rank": i,
                "candidate": c.fault.describe(design.netlist),
                "score": c.score,
            }
            for i, c in enumerate(result.candidates[:5])
        ],
        title="   top diagnosis candidates:",
    ))

    # ------------------------------------------------------------------
    print("\n== step 2: a GOOD chip also fails at the FTAS period ==")
    probe = overkill_analysis(study.calculator, study.model, patterns,
                              sample=10)
    period = max(p.worst_nominal_ns for p in probe.patterns) + \
        probe.setup_ns + 0.05
    report = overkill_analysis(study.calculator, study.model, patterns,
                               sample=10, period_ns=period)
    print(
        f"   at {period:.2f} ns: {report.n_at_risk}/"
        f"{len(report.patterns)} sampled patterns would fail good "
        f"silicon ({report.total_overkill_endpoints()} endpoints) — "
        f"test-noise overkill, not defects"
    )

    # ------------------------------------------------------------------
    print("\n== step 3: repair the noisy patterns ==")
    outcome = repair_pattern_set(
        study.calculator, patterns, study.thresholds_mw,
        report=study.validation("conventional"),
    )
    print(
        f"   {outcome.violations_before} threshold violators -> "
        f"{outcome.violations_after} after re-fill "
        f"({len(outcome.repaired_patterns)} repaired, "
        f"{len(outcome.unrepairable_patterns)} need regeneration)"
    )

    # ------------------------------------------------------------------
    print("\n== step 4: how fast can each set be tested cleanly? ==")
    # Unrepairable patterns go back to ATPG for regeneration; the
    # cleaned set = repaired patterns minus those pulled.
    from repro.atpg.patterns import PatternSet
    from repro.core import guardband_for_yield

    pulled = set(outcome.unrepairable_patterns)
    cleaned = PatternSet(outcome.repaired_set.domain,
                         fill=outcome.repaired_set.fill)
    for i, pattern in enumerate(outcome.repaired_set):
        if i not in pulled:
            cleaned.append(pattern)

    rows = []
    for label, pset in (("original", patterns),
                        ("repaired+pulled", cleaned)):
        rep = overkill_analysis(
            study.calculator, study.model, pset, sample=10,
            period_ns=period,
        )
        safe = guardband_for_yield(rep, n_chips=4000)
        rows.append(
            {
                "pattern_set": label,
                "patterns": len(pset),
                "safe_test_period_ns": safe,
            }
        )
    print(format_table(rows))
    assert rows[1]["safe_test_period_ns"] <= rows[0]["safe_test_period_ns"] + 1e-9
    print("\n(The staged noise-aware flow avoids all of this up front —"
          " see examples/power_aware_atpg.py.)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
