#!/usr/bin/env python
"""Quickstart: generate a SOC, run ATPG, measure SCAP, find violators.

This walks the library's public API end to end in under a minute:

1. build a synthetic Turbo-Eagle SOC,
2. generate launch-off-capture transition-fault patterns (random fill),
3. measure every pattern's CAP and SCAP with the timing-sim calculator,
4. derive per-block SCAP thresholds from statistical IR-drop analysis,
5. report the patterns at risk of IR-drop-induced false failures.

Run:  python examples/quickstart.py [tiny|small|bench]
"""

import sys

from repro import ScapCalculator, build_turbo_eagle, derive_scap_thresholds
from repro.atpg import AtpgEngine
from repro.core import validate_pattern_set
from repro.pgrid import GridModel
from repro.reporting import format_table


def main(scale: str = "tiny") -> None:
    print(f"== building synthetic SOC (scale={scale}) ==")
    design = build_turbo_eagle(scale, seed=2007)
    stats = design.netlist.stats()
    print(
        f"   {stats['gates']} gates, {stats['flops']} scan flops, "
        f"{design.scan.n_chains} scan chains, "
        f"{len(design.domains)} clock domains "
        f"(dominant: {design.dominant_domain()})"
    )

    print("== ATPG: launch-off-capture transition patterns, random fill ==")
    engine = AtpgEngine(design.netlist, design.dominant_domain(),
                        scan=design.scan, seed=1)
    result = engine.run(fill="random")
    print(
        f"   {result.n_patterns} patterns, "
        f"test coverage {result.test_coverage:.1%} "
        f"({len(result.detected)}/{result.total_faults} faults, "
        f"{len(result.untestable)} untestable, "
        f"{len(result.aborted)} aborted)"
    )

    print("== SCAP thresholds from statistical IR-drop (half-cycle) ==")
    model = GridModel.calibrated(design)
    thresholds = derive_scap_thresholds(model)
    print("   " + ", ".join(f"{b}: {t:.2f} mW" for b, t in sorted(thresholds.items())))

    print("== per-pattern SCAP screening ==")
    calculator = ScapCalculator(design)
    report = validate_pattern_set(calculator, result.pattern_set, thresholds)
    rows = []
    for profile in report.profiles[:8]:
        rows.append(
            {
                "pattern": profile.pattern_index,
                "STW_ns": profile.stw_ns,
                "CAP_mW": profile.cap_mw(),
                "SCAP_mW": profile.scap_mw(),
                "SCAP/CAP": profile.scap_to_cap_ratio,
                "SCAP_B5_mW": profile.scap_mw("B5"),
            }
        )
    print(format_table(rows, title="   first patterns:"))
    print(
        f"\n   {len(report.violating_patterns())} of {report.n_patterns} "
        f"patterns exceed at least one block threshold "
        f"({report.violation_fraction():.1%}); "
        f"B5 alone: {len(report.violating_patterns('B5'))}"
    )
    print("\nNext: examples/power_aware_atpg.py shows how the staged "
          "fill-0 flow removes almost all of these violations.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
