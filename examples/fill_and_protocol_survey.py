#!/usr/bin/env python
"""Survey of don't-care fills and launch protocols.

Part 1 — the paper tried all of TetraMAX's fill options before settling
on fill-0 (Section 3.1).  This example runs the same ATPG fault list
under all four fills and compares pattern count, mean care-bit density,
and per-pattern SCAP in block B5.

Part 2 — the related-work launch mechanisms (Section 1.1): for the same
shifted states, compare launch-off-capture, launch-off-shift and
enhanced scan in terms of launch switching activity and fortuitous
fault detection.

Run:  python examples/fill_and_protocol_survey.py [tiny|small]
"""

import sys

import numpy as np

from repro import ScapCalculator, build_turbo_eagle, derive_scap_thresholds
from repro.atpg import AtpgEngine, FaultSimulator, build_fault_universe
from repro.core import validate_pattern_set
from repro.pgrid import GridModel
from repro.reporting import format_table


def fill_survey(design, calculator, thresholds) -> None:
    print("== Part 1: don't-care fill comparison (same fault list) ==")
    rows = []
    for fill in ("random", "0", "1", "adjacent"):
        engine = AtpgEngine(design.netlist, design.dominant_domain(),
                            scan=design.scan, seed=1)
        result = engine.run(fill=fill)
        report = validate_pattern_set(
            calculator, result.pattern_set, thresholds
        )
        scap_b5 = report.scap_series("B5")
        rows.append(
            {
                "fill": fill,
                "patterns": result.n_patterns,
                "coverage": result.test_coverage,
                "mean_care_ratio": result.pattern_set.mean_care_ratio(),
                "mean_SCAP_B5_mW": float(scap_b5.mean()),
                "violations_B5": len(report.violating_patterns("B5")),
            }
        )
    print(format_table(rows))
    print("   (fill-0 minimises B5 activity, at a pattern-count cost —"
          " the paper's choice)")


def protocol_survey(design) -> None:
    print("\n== Part 2: launch mechanisms on identical shifted states ==")
    netlist = design.netlist
    domain = design.dominant_domain()
    fsim = FaultSimulator(netlist, domain)
    calculator = ScapCalculator(design, domain)
    rng = np.random.default_rng(7)
    n_pat = 32
    v1 = rng.integers(0, 2, size=(n_pat, netlist.n_flops), dtype=np.uint8)
    v2 = rng.integers(0, 2, size=(n_pat, netlist.n_flops), dtype=np.uint8)
    faults = build_fault_universe(netlist)

    rows = []
    for protocol, kwargs in (
        ("loc", {}),
        ("los", {"scan": design.scan}),
        ("es", {"v2_matrix": v2}),
    ):
        detected = fsim.run(v1, faults, protocol=protocol, **kwargs)
        transitions = []
        for p in range(min(8, n_pat)):
            v1d = {fi: int(v1[p, fi]) for fi in range(netlist.n_flops)}
            v2d = {fi: int(v2[p, fi]) for fi in range(netlist.n_flops)}
            timing = calculator.simulate_pattern(
                v1d,
                protocol=protocol,
                v2=v2d if protocol == "es" else None,
            )
            transitions.append(timing.n_transitions)
        rows.append(
            {
                "protocol": protocol,
                "faults_detected": len(detected),
                "mean_transitions": float(np.mean(transitions)),
            }
        )
    print(format_table(rows))
    print("   (LOS/ES launch arbitrary state pairs: more detection per"
          " pattern but also more launch switching — why the paper's"
          " LOC-based industrial flow is the power-relevant one)")


def main(scale: str = "tiny") -> None:
    design = build_turbo_eagle(scale, seed=2007)
    model = GridModel.calibrated(design)
    thresholds = derive_scap_thresholds(model)
    calculator = ScapCalculator(design)
    fill_survey(design, calculator, thresholds)
    protocol_survey(design)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
